package cba

import (
	"encoding/json"
	"fmt"
	"io"
)

// SchemaVersion is the envelope schema written by Save; Load accepts
// exactly this version (see internal/rcbt for the envelope rationale).
const SchemaVersion = 1

const modelKind = "cba-model"

// envelope is the on-disk JSON layout. Classifier's fields are all
// exported and JSON-safe (rule row-support bitsets are never part of a
// trained CBA model), so it embeds directly.
type envelope struct {
	Schema     int         `json:"schema"`
	Kind       string      `json:"kind"`
	Classifier *Classifier `json:"classifier"`
}

// Save writes the classifier as a schema-versioned JSON envelope.
func (c *Classifier) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(envelope{Schema: SchemaVersion, Kind: modelKind, Classifier: c})
}

// Load reads a classifier written by Save.
func Load(r io.Reader) (*Classifier, error) {
	var env envelope
	if err := json.NewDecoder(r).Decode(&env); err != nil {
		return nil, fmt.Errorf("cba: load: %w", err)
	}
	if env.Kind != modelKind {
		return nil, fmt.Errorf("cba: load: not a CBA model (kind %q)", env.Kind)
	}
	if env.Schema != SchemaVersion {
		return nil, fmt.Errorf("cba: load: unsupported schema version %d (supported: %d)",
			env.Schema, SchemaVersion)
	}
	c := env.Classifier
	if c == nil || c.NumItems < 0 {
		return nil, fmt.Errorf("cba: load: malformed model")
	}
	return c, nil
}
