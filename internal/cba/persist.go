package cba

import (
	"encoding/gob"
	"fmt"
	"io"
)

// Save serializes the classifier with encoding/gob.
func (c *Classifier) Save(w io.Writer) error {
	return gob.NewEncoder(w).Encode(c)
}

// Load reads a classifier written by Save.
func Load(r io.Reader) (*Classifier, error) {
	var c Classifier
	if err := gob.NewDecoder(r).Decode(&c); err != nil {
		return nil, fmt.Errorf("cba: load: %v", err)
	}
	if c.NumItems < 0 {
		return nil, fmt.Errorf("cba: load: malformed model")
	}
	return &c, nil
}
