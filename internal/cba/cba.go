// Package cba implements the CBA classifier of Liu, Hsu & Ma [19] as
// built in Section 5.1: instead of CBA's exhaustive rule generation
// (infeasible on gene expression data), the candidate rules are the
// shortest lower bounds of the top-1 covering rule groups of each
// training row — a superset of CBA's selected rules by Lemma 2.2 — and
// the classifier is assembled with CBA's precedence sort, database
// coverage selection, and error-minimizing truncation.
package cba

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/lowerbound"
	"repro/internal/rules"
)

// Config controls CBA training.
type Config struct {
	// MinsupFrac is the relative minimum support: the absolute threshold
	// for class c is ceil(MinsupFrac * |rows of class c|). The paper
	// uses 0.7.
	MinsupFrac float64
	// Minconf optionally filters candidate lower-bound rules (0 = none);
	// the paper notes all top-1 groups pass 0.8 in its experiments.
	Minconf float64
	// NL is the number of shortest lower bounds searched per rule group
	// (1 for classic CBA).
	NL int
	// LBMaxLen / LBMaxCandidates bound the FindLB search (0 = defaults).
	LBMaxLen        int
	LBMaxCandidates int
}

// DefaultConfig mirrors the paper's CBA setup.
func DefaultConfig() Config {
	return Config{MinsupFrac: 0.7, Minconf: 0, NL: 1}
}

// Classifier is a CBA rule list with a default class.
type Classifier struct {
	Rules   []*rules.Rule
	Default dataset.Label
	// NumItems is the item universe rules are evaluated over.
	NumItems int
}

// Train builds a CBA classifier from the training dataset.
func Train(d *dataset.Dataset, cfg Config) (*Classifier, error) {
	if cfg.MinsupFrac <= 0 || cfg.MinsupFrac > 1 {
		return nil, fmt.Errorf("cba: MinsupFrac %v outside (0,1]", cfg.MinsupFrac)
	}
	if cfg.NL < 1 {
		return nil, fmt.Errorf("cba: NL must be >= 1, got %d", cfg.NL)
	}
	var pool []*rules.Rule
	itemScores := lowerbound.DefaultItemScores(d)
	for cls := 0; cls < d.NumClasses(); cls++ {
		label := dataset.Label(cls)
		n := d.ClassCount(label)
		if n == 0 {
			continue
		}
		minsup := ceilFrac(cfg.MinsupFrac, n)
		res, err := core.Mine(d, label, core.DefaultConfig(minsup, 1))
		if err != nil {
			return nil, fmt.Errorf("cba: mining class %s: %w", d.ClassNames[cls], err)
		}
		lbs := LowerBoundPool(d, res.Groups, lowerbound.Config{
			NL:            cfg.NL,
			MaxLen:        cfg.LBMaxLen,
			MaxCandidates: cfg.LBMaxCandidates,
			ItemScore:     itemScores,
		})
		for _, r := range lbs {
			if r.Confidence >= cfg.Minconf {
				pool = append(pool, r)
			}
		}
	}
	rules.SortCBA(pool)
	selected, def := SelectRules(d, pool)
	return &Classifier{Rules: selected, Default: def, NumItems: d.NumItems()}, nil
}

// ceilFrac returns ceil(frac * n), at least 1.
func ceilFrac(frac float64, n int) int {
	v := int(frac * float64(n))
	if float64(v) < frac*float64(n) {
		v++
	}
	if v < 1 {
		v = 1
	}
	return v
}

// LowerBoundPool finds up to nl shortest lower bounds for every group
// (in parallel across groups) and returns the deduplicated union in
// group order.
func LowerBoundPool(d *dataset.Dataset, groups []*rules.Group, cfg lowerbound.Config) []*rules.Rule {
	var out []*rules.Rule
	seen := map[string]bool{}
	for _, lbs := range lowerbound.FindAll(d, groups, cfg) {
		for _, lb := range lbs {
			key := fmt.Sprintf("%d|%v", lb.Class, lb.Antecedent)
			if seen[key] {
				continue
			}
			seen[key] = true
			out = append(out, lb)
		}
	}
	return out
}

// SelectRules performs CBA's Steps 3-4: database coverage selection over
// the precedence-sorted rule list, then truncation at the prefix with
// the fewest total errors (ties keep the earliest, shortest prefix). It
// returns the final rule list and default class.
func SelectRules(d *dataset.Dataset, sorted []*rules.Rule) ([]*rules.Rule, dataset.Label) {
	selected, checkpoints := coverageSelect(d, sorted)
	if len(selected) == 0 {
		return nil, majorityLabel(d, nil)
	}
	best := 0
	for i := 1; i < len(checkpoints); i++ {
		if checkpoints[i].errors < checkpoints[best].errors {
			best = i
		}
	}
	return selected[:best+1], checkpoints[best].def
}

// CoverageSelect performs Step 3 only — database coverage selection
// without the error-minimizing truncation — as RCBT's sub-classifiers
// require (Section 5.2). The returned default class is the majority of
// the rows left uncovered after selection.
func CoverageSelect(d *dataset.Dataset, sorted []*rules.Rule) ([]*rules.Rule, dataset.Label) {
	selected, checkpoints := coverageSelect(d, sorted)
	if len(selected) == 0 {
		return nil, majorityLabel(d, nil)
	}
	return selected, checkpoints[len(checkpoints)-1].def
}

type checkpoint struct {
	def    dataset.Label
	errors int
}

// majorityLabel returns the majority class among rows of s (nil = all
// rows); ties go to the lower label, and an empty set yields label 0.
func majorityLabel(d *dataset.Dataset, s *bitset.Set) dataset.Label {
	counts := make([]int, d.NumClasses())
	if s == nil {
		for _, l := range d.Labels {
			counts[int(l)]++
		}
	} else {
		s.ForEach(func(r int) bool {
			counts[int(d.Labels[r])]++
			return true
		})
	}
	best, bestC := dataset.Label(0), -1
	for c, cnt := range counts {
		if cnt > bestC {
			best, bestC = dataset.Label(c), cnt
		}
	}
	return best
}

// coverageSelect is the shared Step 3 loop.
func coverageSelect(d *dataset.Dataset, sorted []*rules.Rule) ([]*rules.Rule, []checkpoint) {
	n := d.NumRows()
	remaining := bitset.New(n)
	remaining.Fill()
	rowItems := make([]*bitset.Set, n)
	for r := 0; r < n; r++ {
		rowItems[r] = d.RowItemSet(r)
	}

	var selected []*rules.Rule
	var checkpoints []checkpoint
	coveredErrors := 0

	for _, r := range sorted {
		if remaining.IsEmpty() {
			break
		}
		// Does r correctly classify at least one remaining row?
		correct := false
		var covered []int
		remaining.ForEach(func(row int) bool {
			if r.Matches(rowItems[row]) {
				covered = append(covered, row)
				if d.Labels[row] == r.Class {
					correct = true
				}
			}
			return true
		})
		if !correct {
			continue
		}
		selected = append(selected, r)
		for _, row := range covered {
			remaining.Remove(row)
			if d.Labels[row] != r.Class {
				coveredErrors++
			}
		}
		def := majorityLabel(d, remaining)
		defErrors := 0
		remaining.ForEach(func(row int) bool {
			if d.Labels[row] != def {
				defErrors++
			}
			return true
		})
		checkpoints = append(checkpoints, checkpoint{def: def, errors: coveredErrors + defErrors})
	}
	return selected, checkpoints
}

// Predict classifies a test row (as an item bitset). usedDefault
// reports whether no rule matched and the default class was used.
// The walk is allocation-free and safe for concurrent use.
//
//vet:allocfree
func (c *Classifier) Predict(rowItems *bitset.Set) (label dataset.Label, usedDefault bool) {
	for _, r := range c.Rules {
		if r.Matches(rowItems) {
			return r.Class, false
		}
	}
	return c.Default, true
}

// PredictDataset classifies every row of a (discretized) dataset and
// returns predicted labels plus the count of default-class decisions.
// The row item set is rebuilt into one reused scratch, so the loop
// performs no per-row allocations.
func (c *Classifier) PredictDataset(d *dataset.Dataset) ([]dataset.Label, int) {
	out := make([]dataset.Label, d.NumRows())
	defaults := 0
	rowItems := bitset.New(d.NumItems())
	for r := 0; r < d.NumRows(); r++ {
		d.RowItemSetInto(r, rowItems)
		lab, usedDef := c.Predict(rowItems)
		out[r] = lab
		if usedDef {
			defaults++
		}
	}
	return out, defaults
}
