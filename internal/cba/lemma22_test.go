package cba

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/lowerbound"
	"repro/internal/rules"
)

// TestLemma22 verifies the paper's Lemma 2.2 end to end: the rules CBA's
// coverage step selects are always drawn from the lower bounds of the
// top-1 covering rule groups — i.e., the top-1 groups suffice to build
// the CBA classifier, which is why MineTopkRGS with k=1 replaces CBA's
// exhaustive rule generation.
func TestLemma22(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomLemmaDataset(r)
		minsup := 1 + r.Intn(2)

		// The lower bounds of the top-1 covering groups (all of them, not
		// just the nl shortest): the Ψ_s superset of the lemma.
		psiS := map[string]bool{}
		var pool []*rules.Rule
		for cls := 0; cls < d.NumClasses(); cls++ {
			label := dataset.Label(cls)
			if d.ClassCount(label) == 0 {
				continue
			}
			res, err := core.Mine(d, label, core.DefaultConfig(minsup, 1))
			if err != nil {
				return false
			}
			for _, g := range res.Groups {
				for _, lb := range lowerbound.Find(d, g, lowerbound.Config{NL: 1 << 20}) {
					key := ruleKey(lb)
					if !psiS[key] {
						psiS[key] = true
						pool = append(pool, lb)
					}
				}
			}
		}

		// CBA's Step 3 over the full candidate pool: every selected rule
		// must be in Ψ_s — trivially true here since the pool is Ψ_s; the
		// substantive check is that the selected rules correctly classify
		// and cover all of what CBA built from *exhaustive* generation
		// would. Emulate exhaustive CBA: all rules = all (closed) groups'
		// lower bounds at every support — here approximated by all
		// single-to-full subsets via the closed-group route is
		// intractable, so instead verify the lemma's proof obligation
		// directly: any rule that correctly classifies a training row
		// first in precedence order belongs to that row's top-1 group.
		rules.SortCBA(pool)
		selected, _ := SelectRules(d, pool)
		for _, sel := range selected {
			if !psiS[ruleKey(sel)] {
				return false
			}
		}

		// Proof obligation: for each training row, the most significant
		// covering group's significance is >= that of any rule matching
		// the row — so the first matching rule in CBA order can always be
		// replaced by a top-1-group lower bound of equal precedence.
		for row := 0; row < d.NumRows(); row++ {
			label := d.Labels[row]
			res, err := core.Mine(d, label, core.DefaultConfig(minsup, 1))
			if err != nil {
				return false
			}
			top := res.PerRow[row]
			items := d.RowItemSet(row)
			for _, rl := range pool {
				if rl.Class != label || !rl.Matches(items) {
					continue
				}
				if len(top) == 0 {
					return false // a covering rule exists but no top-1 group
				}
				g := top[0]
				if rl.Confidence > g.Confidence ||
					(rl.Confidence == g.Confidence && rl.Support > g.Support) {
					return false // a rule more significant than the top-1 group
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func ruleKey(r *rules.Rule) string {
	key := ""
	for _, it := range r.Antecedent {
		key += string(rune('A' + it))
	}
	return key + "|" + string(rune('0'+int(r.Class)))
}

func randomLemmaDataset(r *rand.Rand) *dataset.Dataset {
	nRows := 4 + r.Intn(5)
	nItems := 3 + r.Intn(6)
	d := &dataset.Dataset{ClassNames: []string{"C", "notC"}}
	for i := 0; i < nItems; i++ {
		d.Items = append(d.Items, dataset.Item{Gene: i, GeneName: "g"})
	}
	for row := 0; row < nRows; row++ {
		var items []int
		for i := 0; i < nItems; i++ {
			if r.Intn(3) != 0 {
				items = append(items, i)
			}
		}
		if len(items) == 0 {
			items = []int{0}
		}
		d.Rows = append(d.Rows, items)
		d.Labels = append(d.Labels, dataset.Label(r.Intn(2)))
	}
	d.Labels[0] = 0
	d.Labels[1] = 1
	return d
}
