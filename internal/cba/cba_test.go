package cba

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/bitset"
	"repro/internal/dataset"
	"repro/internal/lowerbound"
	"repro/internal/rules"
)

func TestSelectRulesCoverage(t *testing.T) {
	// Four rows, two items. Rule A ({0} -> C) covers rows 0,1,2 (one
	// wrong); rule B ({1} -> notC) covers row 3.
	d := &dataset.Dataset{
		Items:      []dataset.Item{{GeneName: "x"}, {GeneName: "y"}},
		Rows:       [][]int{{0}, {0}, {0}, {1}},
		Labels:     []dataset.Label{0, 0, 1, 1},
		ClassNames: []string{"C", "notC"},
	}
	ruleA := &rules.Rule{Antecedent: []int{0}, Class: 0, Support: 2, Confidence: 2.0 / 3.0}
	ruleB := &rules.Rule{Antecedent: []int{1}, Class: 1, Support: 1, Confidence: 1.0}
	sorted := []*rules.Rule{ruleB, ruleA} // precedence: B (conf 1.0) first
	// Checkpoints: after B → default C, 1 error (row 2); after A →
	// 1 error (row 2 covered wrongly). Tie keeps the shortest prefix.
	selected, def := SelectRules(d, sorted)
	if len(selected) != 1 || selected[0] != ruleB {
		t.Fatalf("selected %d rules, want just B", len(selected))
	}
	if def != 0 {
		t.Fatalf("default = %v, want C", def)
	}
	// Coverage-only selection keeps both, in precedence order.
	both, _ := CoverageSelect(d, sorted)
	if len(both) != 2 || both[0] != ruleB || both[1] != ruleA {
		t.Fatalf("CoverageSelect = %v, want [B A]", both)
	}
}

func TestSelectRulesSkipsUselessRule(t *testing.T) {
	// A rule that matches nothing (or only misclassifies) is skipped.
	d := &dataset.Dataset{
		Items:      []dataset.Item{{GeneName: "x"}, {GeneName: "y"}},
		Rows:       [][]int{{0}, {0}},
		Labels:     []dataset.Label{0, 0},
		ClassNames: []string{"C", "notC"},
	}
	wrong := &rules.Rule{Antecedent: []int{0}, Class: 1, Support: 1, Confidence: 1}
	nomatch := &rules.Rule{Antecedent: []int{1}, Class: 0, Support: 1, Confidence: 1}
	right := &rules.Rule{Antecedent: []int{0}, Class: 0, Support: 2, Confidence: 1}
	selected, def := SelectRules(d, []*rules.Rule{wrong, nomatch, right})
	if len(selected) != 1 || selected[0] != right {
		t.Fatalf("selected = %v, want only the correct rule", selected)
	}
	if def != 0 {
		t.Fatalf("default = %v, want 0", def)
	}
}

func TestSelectRulesTruncation(t *testing.T) {
	// A later rule that only adds errors must be truncated away.
	// Rows: 0,1 class C with item 0; row 2 class notC with items 0,1.
	d := &dataset.Dataset{
		Items:      []dataset.Item{{GeneName: "x"}, {GeneName: "y"}, {GeneName: "z"}},
		Rows:       [][]int{{0}, {0}, {0, 1}, {2}},
		Labels:     []dataset.Label{0, 0, 1, 1},
		ClassNames: []string{"C", "notC"},
	}
	// good covers rows 0,1,2 correctly classifying 0,1 (error on 2);
	// after it, default notC absorbs row 3 with 0 errors → checkpoint
	// error 1. keep then covers row 3 correctly → also error 1. On the
	// tie, CBA keeps the earliest (shortest) prefix: only `good`, with
	// default notC handling row 3.
	good := &rules.Rule{Antecedent: []int{0}, Class: 0, Support: 2, Confidence: 0.9}
	keep := &rules.Rule{Antecedent: []int{2}, Class: 1, Support: 1, Confidence: 0.8}
	selected, def := SelectRules(d, []*rules.Rule{good, keep})
	if len(selected) != 1 || selected[0] != good {
		t.Fatalf("selected %d rules, want only the first", len(selected))
	}
	if def != 1 {
		t.Fatalf("default = %v, want notC", def)
	}
	// CoverageSelect (Step 3 only) keeps both.
	both, _ := CoverageSelect(d, []*rules.Rule{good, keep})
	if len(both) != 2 {
		t.Fatalf("CoverageSelect kept %d rules, want 2", len(both))
	}
}

func TestSelectRulesEmptyPool(t *testing.T) {
	d, _ := dataset.RunningExample()
	selected, def := SelectRules(d, nil)
	if selected != nil {
		t.Fatal("empty pool should select nothing")
	}
	if def != 0 {
		t.Fatalf("default should be majority class C, got %v", def)
	}
}

func TestTrainOnRunningExample(t *testing.T) {
	d, _ := dataset.RunningExample()
	cfg := DefaultConfig()
	cfg.MinsupFrac = 0.5
	c, err := Train(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Rules) == 0 {
		t.Fatal("classifier should have rules")
	}
	// Training accuracy should be high: the top-1 groups separate the
	// example well.
	preds, _ := c.PredictDataset(d)
	correct := 0
	for r, p := range preds {
		if p == d.Labels[r] {
			correct++
		}
	}
	if correct < 4 {
		t.Fatalf("training accuracy %d/5 too low", correct)
	}
}

func TestTrainValidation(t *testing.T) {
	d, _ := dataset.RunningExample()
	if _, err := Train(d, Config{MinsupFrac: 0, NL: 1}); err == nil {
		t.Fatal("MinsupFrac=0 must error")
	}
	if _, err := Train(d, Config{MinsupFrac: 0.5, NL: 0}); err == nil {
		t.Fatal("NL=0 must error")
	}
}

func TestPredictDefault(t *testing.T) {
	c := &Classifier{
		Rules:    []*rules.Rule{{Antecedent: []int{5}, Class: 0}},
		Default:  1,
		NumItems: 10,
	}
	lab, usedDef := c.Predict(bitset.FromIndices(10, 1, 2))
	if !usedDef || lab != 1 {
		t.Fatalf("expected default class, got %v (default=%v)", lab, usedDef)
	}
	lab, usedDef = c.Predict(bitset.FromIndices(10, 5))
	if usedDef || lab != 0 {
		t.Fatalf("expected rule match, got %v (default=%v)", lab, usedDef)
	}
}

func TestCeilFrac(t *testing.T) {
	cases := []struct {
		frac float64
		n    int
		want int
	}{
		{0.7, 10, 7},
		{0.7, 11, 8}, // 7.7 -> 8
		{0.5, 3, 2},  // 1.5 -> 2
		{1.0, 5, 5},
		{0.1, 1, 1}, // floor 0 -> at least 1
	}
	for _, c := range cases {
		if got := ceilFrac(c.frac, c.n); got != c.want {
			t.Errorf("ceilFrac(%v, %d) = %d, want %d", c.frac, c.n, got, c.want)
		}
	}
}

func TestLowerBoundPoolDedup(t *testing.T) {
	d, idx := dataset.RunningExample()
	sup := d.SupportSet([]int{idx["a"]})
	g := &rules.Group{
		Antecedent: d.CommonItems(sup),
		Class:      0,
		Support:    2,
		Confidence: 1,
		Rows:       sup,
	}
	// The same group twice must not duplicate rules: abc -> C has the
	// two lower bounds a and b (Example 2.2).
	pool := LowerBoundPool(d, []*rules.Group{g, g}, lowerbound.Config{NL: 5})
	if len(pool) != 2 {
		t.Fatalf("pool has %d rules, want 2 (deduplicated)", len(pool))
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	d, _ := dataset.RunningExample()
	cfg := DefaultConfig()
	cfg.MinsupFrac = 0.5
	c, err := Train(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Rules) != len(c.Rules) || loaded.Default != c.Default {
		t.Fatal("model changed across save/load")
	}
	for r := 0; r < d.NumRows(); r++ {
		items := d.RowItemSet(r)
		l1, d1 := c.Predict(items)
		l2, d2 := loaded.Predict(items)
		if l1 != l2 || d1 != d2 {
			t.Fatalf("row %d: prediction changed", r)
		}
	}
	if _, err := Load(strings.NewReader("junk")); err == nil {
		t.Fatal("garbage input must error")
	}
}
