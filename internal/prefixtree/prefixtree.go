// Package prefixtree implements the prefix-tree representation of
// (projected) transposed tables from Section 4.2 / Figure 4. Each tuple
// of the transposed table — the ascending row-id list of one item — is
// inserted as a path; shared prefixes are stored once, so frequency
// counting at an enumeration node touches each distinct prefix a single
// time instead of once per item.
//
// The tree built by Build is immutable. A projected table TT|X is a
// lightweight view: a set of subtree pointers into the base tree plus
// the items whose tuples the projection has exhausted. Projection
// collects pointers — it never copies nodes — mirroring the pointer
// reassignment of the original FARMER+prefix implementation.
package prefixtree

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/transpose"
)

// Node is one prefix-tree node. Count is the number of tuples whose row
// list passes through the node; Items lists the items whose tuples end
// exactly here. Nodes are immutable after Build.
type Node struct {
	Row      int
	Count    int
	Items    []int
	Children []*Node // sorted ascending by Row
}

func (n *Node) ensureChild(row int) *Node {
	i := sort.Search(len(n.Children), func(i int) bool { return n.Children[i].Row >= row })
	if i < len(n.Children) && n.Children[i].Row == row {
		return n.Children[i]
	}
	c := &Node{Row: row}
	n.Children = append(n.Children, nil)
	copy(n.Children[i+1:], n.Children[i:])
	n.Children[i] = c
	return c
}

// Tree is a (projected) transposed table view over an immutable prefix
// tree: the roots of the subtrees still in play, plus the Exhausted
// items whose row lists were fully consumed by the projection path.
type Tree struct {
	NumRows   int
	Exhausted []int
	roots     []*Node
	tuples    int // total tuples = paths through roots + exhausted
}

// Build constructs the prefix tree of a transposed table (TT|∅).
func Build(t *transpose.Table) *Tree {
	root := &Node{Row: -1}
	tr := &Tree{NumRows: t.NumRows}
	for _, tu := range t.Tuples {
		tr.tuples++
		if len(tu.Rows) == 0 {
			tr.Exhausted = append(tr.Exhausted, tu.Item)
			continue
		}
		n := root
		for _, r := range tu.Rows {
			n = n.ensureChild(r)
			n.Count++
		}
		n.Items = append(n.Items, tu.Item)
	}
	tr.roots = root.Children
	return tr
}

// TupleCount returns |I(X)|: the number of tuples of the represented
// projected transposed table, including exhausted ones.
func (tr *Tree) TupleCount() int { return tr.tuples }

// Items returns I(X): every item whose tuple is represented, sorted.
func (tr *Tree) Items() []int {
	out := append([]int(nil), tr.Exhausted...)
	var walk func(n *Node)
	walk = func(n *Node) {
		out = append(out, n.Items...)
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, r := range tr.roots {
		walk(r)
	}
	sort.Ints(out)
	return out
}

// Analyze returns the view's items (unsorted) and per-row tuple
// frequencies in a single traversal — the per-enumeration-node work of
// the mining loop, fused so each distinct prefix is visited once.
func (tr *Tree) Analyze() (items []int, freq []int) {
	items = append(items, tr.Exhausted...)
	freq = make([]int, tr.NumRows)
	var walk func(n *Node)
	walk = func(n *Node) {
		freq[n.Row] += n.Count
		items = append(items, n.Items...)
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, r := range tr.roots {
		walk(r)
	}
	return items, freq
}

// Frequencies returns freq(r) for each row id: the number of tuples
// containing r. This is the prefix tree's payoff — one pass over
// distinct prefixes, not over items.
func (tr *Tree) Frequencies() []int {
	freq := make([]int, tr.NumRows)
	var walk func(n *Node)
	walk = func(n *Node) {
		freq[n.Row] += n.Count
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, r := range tr.roots {
		walk(r)
	}
	return freq
}

// Project returns the view for row r: tuples containing r, restricted
// to rows after r. Items of tuples ending at r become the new view's
// Exhausted set. No nodes are copied; the receiver is unchanged.
func (tr *Tree) Project(r int) *Tree {
	nt := &Tree{NumRows: tr.NumRows}
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.Row == r {
			nt.tuples += n.Count
			nt.Exhausted = append(nt.Exhausted, n.Items...)
			nt.roots = append(nt.roots, n.Children...)
			return
		}
		// Rows along a path ascend, so only subtrees rooted below r can
		// still contain r.
		if n.Row < r {
			for _, c := range n.Children {
				if c.Row <= r {
					walk(c)
				}
			}
		}
	}
	for _, root := range tr.roots {
		walk(root)
	}
	return nt
}

// ProjectAll builds the views for every row in one traversal of the
// current view — the header-table payoff of the prefix tree: each
// distinct prefix is visited once, instead of once per candidate row as
// with materialized projected tables. The returned slice is indexed by
// row id; rows contained in no tuple have nil entries.
func (tr *Tree) ProjectAll() []*Tree {
	views := make([]*Tree, tr.NumRows)
	at := func(row int) *Tree {
		if views[row] == nil {
			views[row] = &Tree{NumRows: tr.NumRows}
		}
		return views[row]
	}
	var walk func(n *Node)
	walk = func(n *Node) {
		v := at(n.Row)
		v.tuples += n.Count
		v.Exhausted = append(v.Exhausted, n.Items...)
		v.roots = append(v.roots, n.Children...)
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, r := range tr.roots {
		walk(r)
	}
	return views
}

// String renders the view for debugging, one node per line as
// "row:count [items]".
func (tr *Tree) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "tuples=%d exhausted=%v\n", tr.tuples, tr.Exhausted)
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		fmt.Fprintf(&b, "%s%d:%d %v\n", strings.Repeat("  ", depth), n.Row, n.Count, n.Items)
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	for _, r := range tr.roots {
		walk(r, 0)
	}
	return b.String()
}
