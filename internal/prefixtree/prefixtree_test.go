package prefixtree

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/transpose"
)

func figure1Tree(t *testing.T) (*dataset.Dataset, map[string]int, *Tree) {
	t.Helper()
	d, idx := dataset.RunningExample()
	return d, idx, Build(transpose.FromDataset(d))
}

func TestBuildCountsFigure4(t *testing.T) {
	_, _, tr := figure1Tree(t)
	if tr.TupleCount() != 10 {
		t.Fatalf("tuples = %d, want 10", tr.TupleCount())
	}
	// Figure 4(a): the node "1" has count 5 (items a, b, c, d, e all
	// start at row 1).
	var n1 *Node
	for _, r := range tr.roots {
		if r.Row == 0 {
			n1 = r
		}
	}
	if n1 == nil || n1.Count != 5 {
		t.Fatalf("node for r1 = %+v, want count 5", n1)
	}
	// Frequencies of the root table equal item-per-row counts.
	want := []int{5, 5, 5, 5, 5}
	if got := tr.Frequencies(); !reflect.DeepEqual(got, want) {
		t.Fatalf("root frequencies = %v, want %v", got, want)
	}
}

func TestItemsSortedComplete(t *testing.T) {
	_, _, tr := figure1Tree(t)
	items := tr.Items()
	if len(items) != 10 || !sort.IntsAreSorted(items) {
		t.Fatalf("Items() = %v", items)
	}
}

func TestProjectMatchesFlatProjection(t *testing.T) {
	d, _ := dataset.RunningExample()
	flat := transpose.FromDataset(d)
	tr := Build(flat)
	for r := 0; r < d.NumRows(); r++ {
		pf := flat.Project(r)
		pt := tr.Project(r)
		if got, want := pt.TupleCount(), len(pf.Tuples); got != want {
			t.Fatalf("project %d: tuples = %d, want %d", r, got, want)
		}
		gotItems := pt.Items()
		wantItems := pf.Items()
		if !reflect.DeepEqual(gotItems, wantItems) {
			t.Fatalf("project %d: items = %v, want %v", r, gotItems, wantItems)
		}
		// Frequencies must agree.
		wantFreq := pf.Frequencies()
		gotFreq := pt.Frequencies()
		for row, c := range wantFreq {
			if gotFreq[row] != c {
				t.Fatalf("project %d: freq[%d] = %d, want %d", r, row, gotFreq[row], c)
			}
		}
	}
}

func TestProjectChainFigure1d(t *testing.T) {
	d, idx := dataset.RunningExample()
	tr := Build(transpose.FromDataset(d))
	p := tr.Project(0).Project(2) // TT|{r1,r3}
	wantItems := []int{idx["c"], idx["d"], idx["e"]}
	sort.Ints(wantItems)
	if got := p.Items(); !reflect.DeepEqual(got, wantItems) {
		t.Fatalf("I({1,3}) = %v, want %v", got, wantItems)
	}
	freq := p.Frequencies()
	if freq[3] != 3 || freq[4] != 1 {
		t.Fatalf("freq = %v", freq)
	}
	// Row 3 in every tuple → closure row (R(cde) ⊇ {r4}).
	if freq[3] != p.TupleCount() {
		t.Fatal("row 3 should appear in every tuple")
	}
}

func TestExhaustedItems(t *testing.T) {
	d, idx := dataset.RunningExample()
	tr := Build(transpose.FromDataset(d))
	p := tr.Project(0).Project(1) // TT|{r1,r2}: a,b exhausted; c continues
	ex := append([]int(nil), p.Exhausted...)
	sort.Ints(ex)
	want := []int{idx["a"], idx["b"]}
	sort.Ints(want)
	if !reflect.DeepEqual(ex, want) {
		t.Fatalf("exhausted = %v, want %v", ex, want)
	}
	if p.TupleCount() != 3 {
		t.Fatalf("tuples = %d, want 3", p.TupleCount())
	}
	// With exhausted tuples present no row can reach full frequency.
	for row, f := range p.Frequencies() {
		if f == p.TupleCount() {
			t.Fatalf("row %d reaches full frequency despite exhausted tuples", row)
		}
	}
}

func TestProjectOnAbsentRow(t *testing.T) {
	_, _, tr := figure1Tree(t)
	p := tr.Project(1).Project(2) // r2 then r3 share only item c? c={0,1,2,3}: contains both.
	p2 := p.Project(4)            // c does not contain r5
	if p2.TupleCount() != 0 || len(p2.Items()) != 0 {
		t.Fatalf("projection on absent row should be empty: %d tuples", p2.TupleCount())
	}
}

// randomTable builds a random dataset's transposed table.
func randomTable(r *rand.Rand) *transpose.Table {
	nRows := 2 + r.Intn(8)
	nItems := 1 + r.Intn(12)
	d := &dataset.Dataset{
		ClassNames: []string{"C", "notC"},
	}
	for i := 0; i < nItems; i++ {
		d.Items = append(d.Items, dataset.Item{Gene: i, GeneName: "g"})
	}
	for row := 0; row < nRows; row++ {
		var items []int
		for i := 0; i < nItems; i++ {
			if r.Intn(2) == 0 {
				items = append(items, i)
			}
		}
		d.Rows = append(d.Rows, items)
		d.Labels = append(d.Labels, dataset.Label(r.Intn(2)))
	}
	return transpose.FromDataset(d)
}

func TestQuickProjectionEquivalence(t *testing.T) {
	// Property: for random datasets and random projection sequences, the
	// prefix tree and the flat table agree on items, tuple counts, and
	// frequencies.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		flat := randomTable(r)
		tree := Build(flat)
		cur := flat
		curT := tree
		last := -1
		for step := 0; step < 4; step++ {
			// pick a random row greater than last
			row := last + 1 + r.Intn(8)
			if row >= flat.NumRows {
				break
			}
			cur = cur.Project(row)
			curT = curT.Project(row)
			last = row
			if curT.TupleCount() != len(cur.Tuples) {
				return false
			}
			gotItems, wantItems := curT.Items(), cur.Items()
			if len(gotItems) != len(wantItems) {
				return false
			}
			if len(gotItems) > 0 && !reflect.DeepEqual(gotItems, wantItems) {
				return false
			}
			wantFreq := cur.Frequencies()
			gotFreq := curT.Frequencies()
			for rw := 0; rw < flat.NumRows; rw++ {
				if gotFreq[rw] != wantFreq[rw] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStringSmoke(t *testing.T) {
	_, _, tr := figure1Tree(t)
	if tr.String() == "" {
		t.Fatal("String should render")
	}
}

func TestAnalyzeMatchesSeparateCalls(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		flat := randomTable(r)
		tr := Build(flat)
		// At the root and after one projection.
		views := []*Tree{tr}
		if flat.NumRows > 0 {
			views = append(views, tr.Project(0))
		}
		for _, v := range views {
			items, freq := v.Analyze()
			sort.Ints(items)
			wantItems := v.Items()
			if !reflect.DeepEqual(items, wantItems) {
				return false
			}
			if !reflect.DeepEqual(freq, v.Frequencies()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestProjectAllMatchesProject(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		flat := randomTable(r)
		tr := Build(flat)
		views := tr.ProjectAll()
		for row := 0; row < flat.NumRows; row++ {
			direct := tr.Project(row)
			v := views[row]
			if v == nil {
				if direct.TupleCount() != 0 {
					return false
				}
				continue
			}
			if v.TupleCount() != direct.TupleCount() {
				return false
			}
			gi, wi := v.Items(), direct.Items()
			if len(gi) != len(wi) {
				return false
			}
			if len(gi) > 0 && !reflect.DeepEqual(gi, wi) {
				return false
			}
			if !reflect.DeepEqual(v.Frequencies(), direct.Frequencies()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildExhaustedTuples(t *testing.T) {
	// A table tuple with an empty row list (as produced by projection of
	// a flat table) lands in Exhausted at build time.
	tt := &transpose.Table{
		NumRows: 3,
		Tuples: []transpose.Tuple{
			{Item: 7, Rows: nil},
			{Item: 8, Rows: []int{0, 2}},
		},
	}
	tr := Build(tt)
	if tr.TupleCount() != 2 {
		t.Fatalf("tuples = %d", tr.TupleCount())
	}
	if len(tr.Exhausted) != 1 || tr.Exhausted[0] != 7 {
		t.Fatalf("exhausted = %v", tr.Exhausted)
	}
}
