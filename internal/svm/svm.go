// Package svm implements a binary support vector machine trained with
// Platt's SMO algorithm (the simplified variant with full KKT pass
// alternation), supporting the linear and polynomial kernels the paper
// evaluates with SVM-light [15]. Gene expression samples are few
// (tens to low hundreds), so the kernel matrix is precomputed.
package svm

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dataset"
)

// Kernel selects the kernel function.
type Kernel int

const (
	// Linear is K(x,y) = <x,y>.
	Linear Kernel = iota
	// Poly is K(x,y) = (gamma*<x,y> + coef0)^degree.
	Poly
)

// Config controls training.
type Config struct {
	C         float64 // soft-margin parameter (default 1)
	Kernel    Kernel
	Degree    int     // polynomial degree (default 3)
	Gamma     float64 // polynomial scale (default 1/numGenes)
	Coef0     float64 // polynomial offset (default 1)
	Tol       float64 // KKT tolerance (default 1e-3)
	MaxPasses int     // passes without change before stopping (default 5)
	MaxIter   int     // hard iteration cap (default 10000)
	Seed      int64
	// Standardize z-scores each gene using training statistics
	// (recommended: raw expression scales vary per gene).
	Standardize bool
}

// DefaultConfig returns a linear SVM configuration.
func DefaultConfig() Config {
	return Config{C: 1, Kernel: Linear, Tol: 1e-3, MaxPasses: 5, MaxIter: 10000, Standardize: true}
}

func (c Config) withDefaults(numGenes int) Config {
	if c.C == 0 {
		c.C = 1
	}
	if c.Degree == 0 {
		c.Degree = 3
	}
	if c.Gamma == 0 {
		c.Gamma = 1 / math.Max(1, float64(numGenes))
	}
	if c.Coef0 == 0 && c.Kernel == Poly {
		c.Coef0 = 1
	}
	if c.Tol == 0 {
		c.Tol = 1e-3
	}
	if c.MaxPasses == 0 {
		c.MaxPasses = 5
	}
	if c.MaxIter == 0 {
		c.MaxIter = 10000
	}
	return c
}

// Model is a trained binary SVM. Label 0 maps to +1, label 1 to -1.
type Model struct {
	cfg     Config
	vectors [][]float64 // support vectors (standardized if configured)
	ys      []float64   // ±1 labels of support vectors
	alphas  []float64
	b       float64
	mean    []float64 // standardization statistics
	std     []float64
}

// Train fits an SVM on a binary-class matrix.
func Train(m *dataset.Matrix, cfg Config) (*Model, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if len(m.ClassNames) != 2 {
		return nil, fmt.Errorf("svm: binary classification only, have %d classes", len(m.ClassNames))
	}
	n := m.NumRows()
	if n < 2 {
		return nil, fmt.Errorf("svm: need at least 2 samples, have %d", n)
	}
	cfg = cfg.withDefaults(m.NumGenes())

	// Standardization statistics.
	g := m.NumGenes()
	mean := make([]float64, g)
	std := make([]float64, g)
	for j := 0; j < g; j++ {
		std[j] = 1
	}
	if cfg.Standardize {
		for j := 0; j < g; j++ {
			s := 0.0
			for i := 0; i < n; i++ {
				s += m.Values[i][j]
			}
			mean[j] = s / float64(n)
			v := 0.0
			for i := 0; i < n; i++ {
				d := m.Values[i][j] - mean[j]
				v += d * d
			}
			sd := math.Sqrt(v / float64(n))
			if sd < 1e-12 {
				sd = 1
			}
			std[j] = sd
		}
	}
	x := make([][]float64, n)
	for i := 0; i < n; i++ {
		xi := make([]float64, g)
		for j := 0; j < g; j++ {
			xi[j] = (m.Values[i][j] - mean[j]) / std[j]
		}
		x[i] = xi
	}
	y := make([]float64, n)
	for i, l := range m.Labels {
		if l == 0 {
			y[i] = 1
		} else {
			y[i] = -1
		}
	}

	// Precompute the kernel matrix.
	km := make([][]float64, n)
	for i := 0; i < n; i++ {
		km[i] = make([]float64, n)
		for j := 0; j <= i; j++ {
			v := kernel(cfg, x[i], x[j])
			km[i][j] = v
			km[j][i] = v
		}
	}

	alphas := make([]float64, n)
	b := 0.0
	rng := rand.New(rand.NewSource(cfg.Seed))

	f := func(i int) float64 {
		s := 0.0
		for j := 0; j < n; j++ {
			if alphas[j] != 0 {
				s += alphas[j] * y[j] * km[j][i]
			}
		}
		return s + b
	}

	passes, iter := 0, 0
	for passes < cfg.MaxPasses && iter < cfg.MaxIter {
		iter++
		changed := 0
		for i := 0; i < n; i++ {
			ei := f(i) - y[i]
			if (y[i]*ei < -cfg.Tol && alphas[i] < cfg.C) || (y[i]*ei > cfg.Tol && alphas[i] > 0) {
				j := rng.Intn(n - 1)
				if j >= i {
					j++
				}
				ej := f(j) - y[j]
				ai, aj := alphas[i], alphas[j]
				var lo, hi float64
				if y[i] != y[j] {
					lo = math.Max(0, aj-ai)
					hi = math.Min(cfg.C, cfg.C+aj-ai)
				} else {
					lo = math.Max(0, ai+aj-cfg.C)
					hi = math.Min(cfg.C, ai+aj)
				}
				if lo == hi {
					continue
				}
				eta := 2*km[i][j] - km[i][i] - km[j][j]
				if eta >= 0 {
					continue
				}
				ajNew := aj - y[j]*(ei-ej)/eta
				if ajNew > hi {
					ajNew = hi
				} else if ajNew < lo {
					ajNew = lo
				}
				if math.Abs(ajNew-aj) < 1e-7 {
					continue
				}
				aiNew := ai + y[i]*y[j]*(aj-ajNew)
				b1 := b - ei - y[i]*(aiNew-ai)*km[i][i] - y[j]*(ajNew-aj)*km[i][j]
				b2 := b - ej - y[i]*(aiNew-ai)*km[i][j] - y[j]*(ajNew-aj)*km[j][j]
				switch {
				case aiNew > 0 && aiNew < cfg.C:
					b = b1
				case ajNew > 0 && ajNew < cfg.C:
					b = b2
				default:
					b = (b1 + b2) / 2
				}
				alphas[i], alphas[j] = aiNew, ajNew
				changed++
			}
		}
		if changed == 0 {
			passes++
		} else {
			passes = 0
		}
	}

	// Keep only support vectors.
	model := &Model{cfg: cfg, b: b, mean: mean, std: std}
	for i := 0; i < n; i++ {
		if alphas[i] > 1e-9 {
			model.vectors = append(model.vectors, x[i])
			model.ys = append(model.ys, y[i])
			model.alphas = append(model.alphas, alphas[i])
		}
	}
	return model, nil
}

func kernel(cfg Config, a, b []float64) float64 {
	dot := 0.0
	for i := range a {
		dot += a[i] * b[i]
	}
	switch cfg.Kernel {
	case Poly:
		return math.Pow(cfg.Gamma*dot+cfg.Coef0, float64(cfg.Degree))
	default:
		return dot
	}
}

// Decision returns the raw decision value for a sample.
func (m *Model) Decision(row []float64) float64 {
	x := make([]float64, len(row))
	for j := range row {
		x[j] = (row[j] - m.mean[j]) / m.std[j]
	}
	s := m.b
	for i, v := range m.vectors {
		s += m.alphas[i] * m.ys[i] * kernel(m.cfg, v, x)
	}
	return s
}

// Predict classifies a sample: label 0 for positive decision values.
func (m *Model) Predict(row []float64) dataset.Label {
	if m.Decision(row) >= 0 {
		return 0
	}
	return 1
}

// NumSupportVectors reports the size of the support set.
func (m *Model) NumSupportVectors() int { return len(m.vectors) }
