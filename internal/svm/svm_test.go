package svm

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
)

func sepMatrix(n int, seed int64, gap float64) *dataset.Matrix {
	r := rand.New(rand.NewSource(seed))
	m := &dataset.Matrix{
		GeneNames:  []string{"g0", "g1", "g2"},
		ClassNames: []string{"pos", "neg"},
	}
	for i := 0; i < n; i++ {
		l := dataset.Label(i % 2)
		shift := gap
		if l == 1 {
			shift = -gap
		}
		m.Values = append(m.Values, []float64{
			shift + r.NormFloat64(), r.NormFloat64(), shift/2 + r.NormFloat64(),
		})
		m.Labels = append(m.Labels, l)
	}
	return m
}

func accuracy(model *Model, m *dataset.Matrix) float64 {
	ok := 0
	for i, row := range m.Values {
		if model.Predict(row) == m.Labels[i] {
			ok++
		}
	}
	return float64(ok) / float64(m.NumRows())
}

func TestLinearSeparable(t *testing.T) {
	train := sepMatrix(40, 1, 3)
	test := sepMatrix(40, 2, 3)
	model, err := Train(train, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(model, test); acc < 0.9 {
		t.Fatalf("linear separable accuracy = %v", acc)
	}
	if model.NumSupportVectors() == 0 {
		t.Fatal("no support vectors")
	}
}

func TestPolyKernelOnRings(t *testing.T) {
	// Inner cluster vs outer ring: not linearly separable; poly (deg 2+)
	// should do markedly better than chance.
	r := rand.New(rand.NewSource(3))
	m := &dataset.Matrix{GeneNames: []string{"x", "y"}, ClassNames: []string{"in", "out"}}
	for i := 0; i < 60; i++ {
		var x, y float64
		var l dataset.Label
		if i%2 == 0 {
			x, y = r.NormFloat64()*0.4, r.NormFloat64()*0.4
			l = 0
		} else {
			ang := r.Float64() * 6.28318
			rad := 3 + r.NormFloat64()*0.2
			x, y = rad*math.Cos(ang), rad*math.Sin(ang)
			l = 1
		}
		m.Values = append(m.Values, []float64{x, y})
		m.Labels = append(m.Labels, l)
	}
	cfg := DefaultConfig()
	cfg.Kernel = Poly
	cfg.Degree = 2
	cfg.Gamma = 1
	cfg.Standardize = false
	model, err := Train(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(model, m); acc < 0.9 {
		t.Fatalf("poly ring accuracy = %v", acc)
	}
}

func TestDeterministic(t *testing.T) {
	train := sepMatrix(30, 7, 2)
	a, err := Train(train, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(train, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	test := sepMatrix(20, 8, 2)
	for _, row := range test.Values {
		if a.Predict(row) != b.Predict(row) {
			t.Fatal("same config+data must give identical predictions")
		}
	}
}

func TestValidation(t *testing.T) {
	multi := &dataset.Matrix{
		GeneNames:  []string{"g"},
		Values:     [][]float64{{1}, {2}, {3}},
		Labels:     []dataset.Label{0, 1, 2},
		ClassNames: []string{"a", "b", "c"},
	}
	if _, err := Train(multi, DefaultConfig()); err == nil {
		t.Fatal("3-class input must error")
	}
	tiny := &dataset.Matrix{
		GeneNames:  []string{"g"},
		Values:     [][]float64{{1}},
		Labels:     []dataset.Label{0},
		ClassNames: []string{"a", "b"},
	}
	if _, err := Train(tiny, DefaultConfig()); err == nil {
		t.Fatal("single sample must error")
	}
}

func TestStandardizationHandlesScales(t *testing.T) {
	// One gene on a huge scale should not drown the informative one when
	// standardizing.
	r := rand.New(rand.NewSource(11))
	m := &dataset.Matrix{GeneNames: []string{"inf", "big"}, ClassNames: []string{"pos", "neg"}}
	for i := 0; i < 40; i++ {
		l := dataset.Label(i % 2)
		shift := 2.0
		if l == 1 {
			shift = -2.0
		}
		m.Values = append(m.Values, []float64{shift + r.NormFloat64(), 1e6 * r.NormFloat64()})
		m.Labels = append(m.Labels, l)
	}
	model, err := Train(m, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(model, m); acc < 0.85 {
		t.Fatalf("standardized accuracy = %v", acc)
	}
}

func TestAlphasWithinBox(t *testing.T) {
	// Every support vector's alpha must satisfy 0 < alpha <= C, and the
	// KKT stationarity sum Σ alpha_i y_i ≈ 0 must hold.
	train := sepMatrix(30, 21, 1.5)
	cfg := DefaultConfig()
	cfg.C = 2
	model, err := Train(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for i, a := range model.alphas {
		if a <= 0 || a > cfg.C+1e-9 {
			t.Fatalf("alpha[%d] = %v outside (0, %v]", i, a, cfg.C)
		}
		sum += a * model.ys[i]
	}
	if math.Abs(sum) > 1e-6 {
		t.Fatalf("sum alpha_i y_i = %v, want ~0", sum)
	}
}

func TestDecisionSignMatchesPredict(t *testing.T) {
	train := sepMatrix(30, 5, 2)
	model, err := Train(train, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range train.Values {
		d := model.Decision(row)
		want := dataset.Label(1)
		if d >= 0 {
			want = 0
		}
		if model.Predict(row) != want {
			t.Fatal("Predict must be the sign of Decision")
		}
	}
}

func TestDegenerateOneClassAfterSplit(t *testing.T) {
	// All samples the same class: SMO has nothing to separate; the model
	// should still train (empty support set) and predict something.
	m := &dataset.Matrix{
		GeneNames:  []string{"g"},
		Values:     [][]float64{{1}, {2}, {3}},
		Labels:     []dataset.Label{0, 0, 0},
		ClassNames: []string{"a", "b"},
	}
	model, err := Train(m, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	_ = model.Predict([]float64{1.5})
}
