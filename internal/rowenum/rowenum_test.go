package rowenum

import (
	"sort"
	"testing"

	"repro/internal/bitset"
	"repro/internal/dataset"
)

// collector is a no-prune visitor that records every group.
type collector struct {
	groups []collected
}

type collected struct {
	items []int
	rows  []int
	xp    int
	xn    int
}

func (c *collector) UpdateThresholds(xPos, candPos []int) Threshold       { return Threshold{} }
func (c *collector) PruneBeforeScan(_ Threshold, xp, xn, rp, rn int) bool { return false }
func (c *collector) PruneAfterScan(_ Threshold, xp, xn, mp, rn int) bool  { return false }
func (c *collector) OnGroup(items []int, rows *bitset.Set, xp, xn int, xPos []int) {
	c.groups = append(c.groups, collected{
		items: append([]int(nil), items...),
		rows:  rows.Indices(),
		xp:    xp,
		xn:    xn,
	})
}

// engineFor builds an engine over the running example with identity row
// order (already class dominant: rows 0-2 are class C).
func engineFor(t *testing.T, v Visitor, disableBackward bool) (*Engine, []int) {
	t.Helper()
	d, _ := dataset.RunningExample()
	itemRows := make([]*bitset.Set, d.NumItems())
	items := make([]int, d.NumItems())
	for i := 0; i < d.NumItems(); i++ {
		itemRows[i] = d.ItemRows(i)
		items[i] = i
	}
	return &Engine{
		NumRows:         d.NumRows(),
		NumPos:          3,
		ItemRows:        itemRows,
		Visitor:         v,
		DisableBackward: disableBackward,
	}, items
}

func TestEnumerationFindsAllClosedSets(t *testing.T) {
	c := &collector{}
	eng, items := engineFor(t, c, false)
	stats := eng.Run(items)
	if stats.Nodes == 0 {
		t.Fatal("no nodes visited")
	}
	// Collect distinct closed row sets; compare against brute force over
	// the dataset.
	d, _ := dataset.RunningExample()
	want := map[string]bool{}
	for mask := 1; mask < 1<<5; mask++ {
		rows := bitset.New(5)
		for r := 0; r < 5; r++ {
			if mask&(1<<r) != 0 {
				rows.Add(r)
			}
		}
		its := d.CommonItems(rows)
		if len(its) == 0 {
			continue
		}
		sup := d.SupportSet(its)
		if sup.CountBelow(3) == 0 { // xp > 0 filter matches engine
			continue
		}
		want[sup.Key()] = true
	}
	got := map[string]bool{}
	for _, g := range c.groups {
		s := bitset.New(5)
		for _, r := range g.rows {
			s.Add(r)
		}
		if got[s.Key()] {
			t.Fatalf("closed set %v reported twice with backward pruning on", g.rows)
		}
		got[s.Key()] = true
	}
	if len(got) != len(want) {
		t.Fatalf("found %d closed sets, want %d", len(got), len(want))
	}
	for k := range want {
		if !got[k] {
			t.Fatal("missing closed set")
		}
	}
}

func TestDisableBackwardStillComplete(t *testing.T) {
	on := &collector{}
	engOn, items := engineFor(t, on, false)
	statsOn := engOn.Run(items)

	off := &collector{}
	engOff, items2 := engineFor(t, off, true)
	statsOff := engOff.Run(items2)

	if statsOff.Nodes < statsOn.Nodes {
		t.Fatalf("disabling backward pruning should not reduce nodes: %d < %d", statsOff.Nodes, statsOn.Nodes)
	}
	// The distinct closed sets must be identical.
	distinct := func(gs []collected) map[string]bool {
		m := map[string]bool{}
		for _, g := range gs {
			s := bitset.New(5)
			for _, r := range g.rows {
				s.Add(r)
			}
			m[s.Key()] = true
		}
		return m
	}
	a, b := distinct(on.groups), distinct(off.groups)
	if len(a) != len(b) {
		t.Fatalf("distinct closed sets differ: %d vs %d", len(a), len(b))
	}
}

func TestGroupRowConsistency(t *testing.T) {
	// For every reported group: xp+xn == |rows|, items nonempty and
	// sorted, rows = support set of items.
	c := &collector{}
	eng, items := engineFor(t, c, false)
	eng.Run(items)
	d, _ := dataset.RunningExample()
	for _, g := range c.groups {
		if g.xp+g.xn != len(g.rows) {
			t.Fatalf("xp+xn=%d but |rows|=%d", g.xp+g.xn, len(g.rows))
		}
		if len(g.items) == 0 || !sort.IntsAreSorted(g.items) {
			t.Fatalf("bad items %v", g.items)
		}
		sup := d.SupportSet(g.items).Indices()
		got := append([]int(nil), g.rows...)
		sort.Ints(got)
		if len(sup) != len(got) {
			t.Fatalf("rows %v != support %v of items %v", got, sup, g.items)
		}
		for i := range sup {
			if sup[i] != got[i] {
				t.Fatalf("rows %v != support %v", got, sup)
			}
		}
	}
}

func TestEmptyRun(t *testing.T) {
	c := &collector{}
	eng, _ := engineFor(t, c, false)
	stats := eng.Run(nil)
	if stats.Nodes != 0 || len(c.groups) != 0 {
		t.Fatal("empty item list must do nothing")
	}
}

// pruneAll prunes everything at the loose stage.
type pruneAll struct{ collector }

func (p *pruneAll) PruneBeforeScan(_ Threshold, xp, xn, rp, rn int) bool { return true }

func TestPruneBeforeScanStopsDescent(t *testing.T) {
	p := &pruneAll{}
	eng, items := engineFor(t, p, false)
	stats := eng.Run(items)
	if stats.Nodes != 1 || stats.PrunedBeforeScan != 1 {
		t.Fatalf("stats = %+v, want exactly the root pruned", stats)
	}
	if len(p.groups) != 0 {
		t.Fatal("no groups should be reported")
	}
}

func TestMaxNodesAborts(t *testing.T) {
	c := &collector{}
	eng, items := engineFor(t, c, false)
	eng.MaxNodes = 2
	stats := eng.Run(items)
	if !stats.Aborted {
		t.Fatal("tiny budget should abort")
	}
	if stats.Nodes > 3 {
		t.Fatalf("nodes = %d, want <= 3", stats.Nodes)
	}
	if (errAborted{}).Error() == "" {
		t.Fatal("errAborted must describe itself")
	}
}

func TestEmptyUniverse(t *testing.T) {
	c := &collector{}
	eng := &Engine{NumRows: 0, NumPos: 0, Visitor: c}
	if stats := eng.Run([]int{0}); stats.Nodes != 0 {
		t.Fatal("zero-row engine must do nothing")
	}
}
