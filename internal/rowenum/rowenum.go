// Package rowenum implements the depth-first row enumeration skeleton
// shared by MineTopkRGS (internal/core) and the FARMER baseline
// (internal/farmer): the search over the row enumeration tree of Figure
// 2, with forward closure, backward (closedness) pruning, and visitor
// hooks where each miner plugs in its own threshold logic.
//
// The engine works on a row-reordered view of the dataset: rows
// 0..NumPos-1 carry the specified consequent class ("positive"), the
// rest are negative — the class dominant order of Definition 3.1.
// Item supports are bitsets over these reordered row ids, so closure is
// a word-wise intersection and projection is a membership filter.
package rowenum

import (
	"repro/internal/bitset"
)

// Stats counts the work performed by one enumeration run.
type Stats struct {
	Nodes            int // enumeration nodes entered
	BackwardPruned   int // nodes cut by the closedness check (Step 7)
	PrunedBeforeScan int // nodes cut by loose bounds (Step 9)
	PrunedAfterScan  int // nodes cut by tight bounds (Step 11)
	Groups           int // OnGroup invocations
	MaxDepth         int
	Aborted          bool // true when MaxNodes stopped the search early
}

// Threshold is the dynamic pruning threshold computed at a node (Step
// 8): the weakest (confidence, support) pair a subtree must beat. The
// engine holds it per node, so recursion into children — which compute
// their own, tighter thresholds — cannot leak into sibling checks.
type Threshold struct {
	Conf float64
	Sup  int
}

// Visitor receives enumeration events and owns all threshold logic.
// Hooks are called in the Step order of Algorithm MineTopkRGS (Figure
// 3), with the structural backward check folded into the engine.
type Visitor interface {
	// UpdateThresholds is Step 8: xPos are the positive rows already in
	// X, candPos the positive candidate rows still enumerable below the
	// node (a superset of the reachable R_p). Together they bound the
	// rows that groups found in this subtree can cover (Lemma 3.2). The
	// returned threshold is passed back into the pruning hooks for this
	// node and its child-generation loop.
	UpdateThresholds(xPos, candPos []int) Threshold
	// PruneBeforeScan is Step 9: loose upper bounds computed without
	// scanning the projected table. rp and rn are candidate counts
	// inherited from the parent.
	PruneBeforeScan(th Threshold, xp, xn, rp, rn int) bool
	// PruneAfterScan is Step 11: tight upper bounds. mp is the number of
	// positive candidates that survive the node's projection, rn the
	// surviving negative candidates.
	PruneAfterScan(th Threshold, xp, xn, mp, rn int) bool
	// OnGroup is Steps 12-13: a closed rule group was identified. items
	// is I(X) (sorted, aliased — copy to retain), rows is R(I(X)) (fresh,
	// may be retained), xp/xn its class split, xPos the positive row ids.
	OnGroup(items []int, rows *bitset.Set, xp, xn int, xPos []int)
}

// Engine runs the enumeration. Configure the fields, then call Run.
type Engine struct {
	NumRows  int           // total rows
	NumPos   int           // rows 0..NumPos-1 are the consequent class
	ItemRows []*bitset.Set // full support set per item id
	Visitor  Visitor

	// DisableBackward turns off the closedness check (ablation only:
	// the same group is then reported once per generating row subset).
	DisableBackward bool
	// MaxNodes, when positive, aborts the search after that many nodes;
	// Stats.Aborted reports the cutoff. Results seen so far remain valid
	// but possibly incomplete.
	MaxNodes int

	stats Stats
}

// errAborted unwinds the recursion when the node budget is exhausted.
type errAborted struct{}

func (errAborted) Error() string { return "rowenum: node budget exhausted" }

// Run enumerates starting from the given alive item list (the frequent
// items, ascending) and returns work statistics.
func (e *Engine) Run(items []int) Stats {
	e.stats = Stats{}
	if len(items) == 0 || e.NumRows == 0 {
		return e.stats
	}
	cand := make([]int, e.NumRows)
	for i := range cand {
		cand[i] = i
	}
	x := bitset.New(e.NumRows)
	func() {
		defer func() {
			if rec := recover(); rec != nil {
				if _, ok := rec.(errAborted); ok {
					e.stats.Aborted = true
					return
				}
				panic(rec)
			}
		}()
		e.enumerate(x, items, cand, 0, 0)
	}()
	return e.stats
}

// posSplit splits an ascending candidate list at NumPos.
func (e *Engine) posSplit(cand []int) (pos, neg []int) {
	i := 0
	for i < len(cand) && cand[i] < e.NumPos {
		i++
	}
	return cand[:i], cand[i:]
}

// enumerate visits the node whose pending row set is x (not yet closed),
// with alive items, candidate rows cand (all ids >= minNext, ascending),
// at the given depth.
func (e *Engine) enumerate(x *bitset.Set, items []int, cand []int, minNext, depth int) {
	e.stats.Nodes++
	if e.MaxNodes > 0 && e.stats.Nodes > e.MaxNodes {
		// vetsuite:allow panic -- recovered in Run: unwinds the recursion when the node budget is spent
		panic(errAborted{})
	}
	if depth > e.stats.MaxDepth {
		e.stats.MaxDepth = depth
	}

	xp := x.CountBelow(e.NumPos)
	xn := x.Count() - xp
	candPos, candNeg := e.posSplit(cand)

	// Step 8: dynamic thresholds over the rows this subtree can cover.
	th := e.Visitor.UpdateThresholds(posIndices(x, e.NumPos), candPos)

	// Step 9: loose bounds using inherited candidate counts.
	if e.Visitor.PruneBeforeScan(th, xp, xn, len(candPos), len(candNeg)) {
		e.stats.PrunedBeforeScan++
		return
	}

	// Closure: R(I(X)) = ∩_{i ∈ I(X)} R(i).
	closed := e.ItemRows[items[0]].Clone()
	for _, it := range items[1:] {
		closed.IntersectWith(e.ItemRows[it])
	}

	// Step 7: backward pruning — a row ordered before the enumeration
	// point that is in R(I(X)) but not in X means this closed set was
	// already reached under an earlier branch.
	if !e.DisableBackward && closed.AnyBelow(minNext, x) {
		e.stats.BackwardPruned++
		return
	}

	// Step 10: forward closure — candidates inside R(I(X)) join X; the
	// rest survive iff some tuple still contains them.
	xp = closed.CountBelow(e.NumPos)
	xn = closed.Count() - xp
	survivors := cand[:0:0] // fresh slice, no aliasing of cand
	mp := 0
	for _, r := range cand {
		if closed.Contains(r) {
			continue
		}
		alive := false
		for _, it := range items {
			if e.ItemRows[it].Contains(r) {
				alive = true
				break
			}
		}
		if alive {
			survivors = append(survivors, r)
			if r < e.NumPos {
				mp++
			}
		}
	}

	// Step 11: tight bounds using surviving candidate counts, with the
	// thresholds recomputed over the now-exact reachable row set
	// (X_p of the closed set plus the surviving positive candidates —
	// Lemma 3.2's maximal coverage). The post-scan threshold is at least
	// as strong as the pre-scan one because the reachable set shrank.
	xPosClosed := posIndices(closed, e.NumPos)
	survPos := survivors[:0:0]
	for _, r := range survivors {
		if r < e.NumPos {
			survPos = append(survPos, r)
		}
	}
	th = e.Visitor.UpdateThresholds(xPosClosed, survPos)
	if e.Visitor.PruneAfterScan(th, xp, xn, mp, len(survivors)-mp) {
		e.stats.PrunedAfterScan++
		return
	}

	// Steps 12-13: report the group at this node.
	if xp > 0 {
		e.stats.Groups++
		e.Visitor.OnGroup(items, closed, xp, xn, xPosClosed)
	}

	// Step 14: descend into each surviving candidate in ORD order. Each
	// child is first checked against the loose bounds using the
	// thresholds already computed for this node (a superset of the
	// child's reachable rows, so conservative): children that cannot
	// contribute are skipped without paying a recursive call and a fresh
	// threshold scan.
	childItems := make([]int, 0, len(items))
	posLeft := mp
	for i, r := range survivors {
		childXp, childXn := xp, xn
		if r < e.NumPos {
			posLeft--
			childXp++
		} else {
			childXn++
		}
		negLeft := len(survivors) - i - 1 - posLeft
		if e.Visitor.PruneBeforeScan(th, childXp, childXn, posLeft, negLeft) {
			e.stats.PrunedBeforeScan++
			continue
		}
		childItems = childItems[:0]
		for _, it := range items {
			if e.ItemRows[it].Contains(r) {
				childItems = append(childItems, it)
			}
		}
		if len(childItems) == 0 {
			continue
		}
		childX := closed.Clone()
		childX.Add(r)
		e.enumerate(childX, childItems, survivors[i+1:], r+1, depth+1)
	}
}

// posIndices returns the elements of s below limit, ascending.
func posIndices(s *bitset.Set, limit int) []int {
	out := make([]int, 0, s.CountBelow(limit))
	s.ForEach(func(i int) bool {
		if i >= limit {
			return false
		}
		out = append(out, i)
		return true
	})
	return out
}
