package c45

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
)

// andMatrix: class pos iff both genes are high — a depth-2 concept a
// greedy gain-ratio tree can learn exactly (unlike symmetric XOR, whose
// root information gain is zero; real C4.5 stumps out on that too).
func andMatrix() *dataset.Matrix {
	m := &dataset.Matrix{
		GeneNames:  []string{"g0", "g1"},
		ClassNames: []string{"pos", "neg"},
	}
	pts := []struct {
		a, b float64
		l    dataset.Label
	}{
		{0.9, 0.9, 0}, {1, 0.8, 0}, {0.8, 1, 0}, {0.95, 0.85, 0},
		{0.1, 0.1, 1}, {0, 0.2, 1}, {0.2, 0, 1},
		{0.9, 0.1, 1}, {1, 0.2, 1},
		{0.1, 0.9, 1}, {0.2, 1, 1},
	}
	for _, p := range pts {
		m.Values = append(m.Values, []float64{p.a, p.b})
		m.Labels = append(m.Labels, p.l)
	}
	return m
}

func sepMatrix(n int, seed int64) *dataset.Matrix {
	r := rand.New(rand.NewSource(seed))
	m := &dataset.Matrix{
		GeneNames:  []string{"inf", "noise"},
		ClassNames: []string{"pos", "neg"},
	}
	for i := 0; i < n; i++ {
		l := dataset.Label(i % 2)
		shift := 3.0
		if l == 1 {
			shift = -3.0
		}
		m.Values = append(m.Values, []float64{shift + r.NormFloat64(), r.NormFloat64()})
		m.Labels = append(m.Labels, l)
	}
	return m
}

func accuracy(pred func([]float64) dataset.Label, m *dataset.Matrix) float64 {
	ok := 0
	for i, row := range m.Values {
		if pred(row) == m.Labels[i] {
			ok++
		}
	}
	return float64(ok) / float64(m.NumRows())
}

func TestTreeLearnsAnd(t *testing.T) {
	m := andMatrix()
	cfg := DefaultConfig()
	cfg.MinLeaf = 1
	cfg.Prune = false
	tree, err := TrainTree(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(tree.Predict, m); acc != 1.0 {
		t.Fatalf("and training accuracy = %v, want 1.0", acc)
	}
	if tree.Depth() < 2 {
		t.Fatalf("and needs depth >= 2, got %d", tree.Depth())
	}
}

func TestTreeSeparable(t *testing.T) {
	train := sepMatrix(40, 1)
	test := sepMatrix(40, 2)
	tree, err := TrainTree(train, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(tree.Predict, test); acc < 0.9 {
		t.Fatalf("separable test accuracy = %v", acc)
	}
	// The informative gene must be the root split.
	if tree.root.leaf || tree.root.gene != 0 {
		t.Fatalf("root should split on gene 0, got %+v", tree.root)
	}
}

func TestMaxDepthCap(t *testing.T) {
	m := andMatrix()
	cfg := DefaultConfig()
	cfg.MaxDepth = 1
	cfg.MinLeaf = 1
	cfg.Prune = false
	tree, err := TrainTree(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Depth() > 1 {
		t.Fatalf("depth %d exceeds cap 1", tree.Depth())
	}
}

func TestPruningCollapsesNoise(t *testing.T) {
	// Pure-noise labels: pruning should collapse the tree to (nearly) a
	// stump, certainly smaller than the unpruned tree.
	r := rand.New(rand.NewSource(3))
	m := &dataset.Matrix{GeneNames: []string{"n1", "n2"}, ClassNames: []string{"a", "b"}}
	for i := 0; i < 40; i++ {
		m.Values = append(m.Values, []float64{r.NormFloat64(), r.NormFloat64()})
		m.Labels = append(m.Labels, dataset.Label(r.Intn(2)))
	}
	cfg := DefaultConfig()
	cfg.Prune = false
	cfg.MinLeaf = 1
	unpruned, err := TrainTree(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Prune = true
	pruned, err := TrainTree(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pruned.Depth() >= unpruned.Depth() && unpruned.Depth() > 0 {
		t.Fatalf("pruning did not shrink the tree: %d vs %d", pruned.Depth(), unpruned.Depth())
	}
}

func TestWeightsShiftMajority(t *testing.T) {
	// With one heavily weighted minority instance, a depthless tree's
	// majority flips.
	m := &dataset.Matrix{
		GeneNames:  []string{"g"},
		Values:     [][]float64{{1}, {1}, {1}},
		Labels:     []dataset.Label{0, 0, 1},
		ClassNames: []string{"a", "b"},
	}
	tree, err := TrainTreeWeighted(m, []float64{1, 1, 10}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.Predict([]float64{1}); got != 1 {
		t.Fatalf("weighted majority = %v, want 1", got)
	}
}

func TestTrainTreeValidation(t *testing.T) {
	m := sepMatrix(10, 1)
	if _, err := TrainTreeWeighted(m, []float64{1}, DefaultConfig()); err == nil {
		t.Fatal("weight length mismatch must error")
	}
	empty := &dataset.Matrix{GeneNames: []string{"g"}, ClassNames: []string{"a", "b"}}
	if _, err := TrainTree(empty, DefaultConfig()); err == nil {
		t.Fatal("empty training set must error")
	}
}

func TestBagging(t *testing.T) {
	train := sepMatrix(40, 4)
	test := sepMatrix(40, 5)
	b, err := TrainBagging(train, DefaultConfig(), 10, 42)
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(b.Predict, test); acc < 0.9 {
		t.Fatalf("bagging accuracy = %v", acc)
	}
	if _, err := TrainBagging(train, DefaultConfig(), 0, 1); err == nil {
		t.Fatal("0 rounds must error")
	}
}

func TestBoostingImprovesStumps(t *testing.T) {
	// A single depth-1 stump cannot represent AND; AdaBoost over stumps
	// must beat it on training data.
	m := andMatrix()
	cfg := DefaultConfig()
	cfg.MinLeaf = 1
	cfg.Prune = false
	cfg.MaxDepth = 1
	stump, err := TrainTree(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TrainBoosting(m, cfg, 20, 42)
	if err != nil {
		t.Fatal(err)
	}
	sAcc := accuracy(stump.Predict, m)
	bAcc := accuracy(b.Predict, m)
	if bAcc < sAcc {
		t.Fatalf("boosting (%v) worse than single stump (%v)", bAcc, sAcc)
	}
	if bAcc < 0.9 {
		t.Fatalf("boosted stumps accuracy = %v", bAcc)
	}
	if _, err := TrainBoosting(m, cfg, 0, 1); err == nil {
		t.Fatal("0 rounds must error")
	}
}

func TestBoostingStopsGracefullyOnNoise(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	m := &dataset.Matrix{GeneNames: []string{"n"}, ClassNames: []string{"a", "b"}}
	for i := 0; i < 30; i++ {
		m.Values = append(m.Values, []float64{r.NormFloat64()})
		m.Labels = append(m.Labels, dataset.Label(r.Intn(2)))
	}
	b, err := TrainBoosting(m, DefaultConfig(), 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.trees) == 0 {
		t.Fatal("boosting must keep at least one tree")
	}
}

func TestPessimisticBound(t *testing.T) {
	// The bound must exceed the observed error and grow as CF shrinks.
	e1 := pessimistic(2, 10, 0.25)
	if e1 <= 2 {
		t.Fatalf("pessimistic(2,10,0.25) = %v, want > 2", e1)
	}
	e2 := pessimistic(2, 10, 0.05)
	if e2 <= e1 {
		t.Fatalf("smaller CF should give a larger bound: %v vs %v", e2, e1)
	}
	if pessimistic(0, 0, 0.25) != 0 {
		t.Fatal("zero weight should bound to 0")
	}
}

func TestZForMonotone(t *testing.T) {
	prev := math.Inf(1)
	for _, cf := range []float64{0.001, 0.01, 0.05, 0.1, 0.25, 0.5} {
		z := zFor(cf)
		if z > prev {
			t.Fatalf("zFor not monotone at %v", cf)
		}
		prev = z
	}
	if zFor(0) != 4.0 {
		t.Fatal("zFor(0)")
	}
	if zFor(0.9) != 0 {
		t.Fatal("zFor beyond table should be 0")
	}
}

func TestGainRatioPenalizesUnbalancedSplits(t *testing.T) {
	// Two candidate genes with equal information gain: one splits 50/50,
	// the other slices off a single row. Gain ratio must prefer the
	// balanced split. Construct: gene 0 separates perfectly at the
	// midpoint; gene 1 isolates one sample (lower split info but lower
	// gain too). Simply assert the root split is gene 0.
	m := &dataset.Matrix{
		GeneNames:  []string{"balanced", "sliver"},
		ClassNames: []string{"a", "b"},
	}
	for i := 0; i < 12; i++ {
		l := dataset.Label(0)
		bal := -1.0
		if i >= 6 {
			l = 1
			bal = 1.0
		}
		sliver := 0.0
		if i == 0 {
			sliver = -5 // isolates one row of class a
		}
		m.Values = append(m.Values, []float64{bal, sliver})
		m.Labels = append(m.Labels, l)
	}
	tree, err := TrainTree(m, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if tree.root.leaf || tree.root.gene != 0 {
		t.Fatalf("root should split on the balanced gene, got %+v", tree.root)
	}
}

func TestBaggingDeterministicPerSeed(t *testing.T) {
	train := sepMatrix(30, 8)
	a, err := TrainBagging(train, DefaultConfig(), 5, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TrainBagging(train, DefaultConfig(), 5, 99)
	if err != nil {
		t.Fatal(err)
	}
	probe := sepMatrix(20, 9)
	for _, row := range probe.Values {
		if a.Predict(row) != b.Predict(row) {
			t.Fatal("same seed must give identical ensembles")
		}
	}
}
