// Package c45 implements the C4.5 decision tree family used as
// comparison classifiers in Table 2: a single gain-ratio tree over
// continuous attributes with pessimistic (confidence-interval) pruning,
// plus bagging and AdaBoost.M1 boosting ensembles [27].
//
// Trees support per-instance weights so the same induction code serves
// plain training, bootstrap bagging, and boosting's reweighted rounds.
package c45

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/dataset"
)

// Config controls tree induction.
type Config struct {
	// MaxDepth caps tree depth (0 = unlimited).
	MaxDepth int
	// MinLeaf is the minimum total instance weight per leaf (default 2).
	MinLeaf float64
	// Prune enables pessimistic error pruning.
	Prune bool
	// CF is the pruning confidence factor (default 0.25, as in C4.5).
	CF float64
}

// DefaultConfig mirrors C4.5's release defaults.
func DefaultConfig() Config {
	return Config{MinLeaf: 2, Prune: true, CF: 0.25}
}

func (c Config) withDefaults() Config {
	if c.MinLeaf == 0 {
		c.MinLeaf = 2
	}
	if c.CF == 0 {
		c.CF = 0.25
	}
	return c
}

// node is one tree node: internal nodes split "gene <= threshold".
type node struct {
	leaf      bool
	label     dataset.Label
	gene      int
	threshold float64
	left      *node // gene <= threshold
	right     *node // gene > threshold
	// training statistics for pruning
	weight float64 // total instance weight reaching the node
	errs   float64 // weight misclassified by the node's majority label
}

// Tree is a trained C4.5 decision tree.
type Tree struct {
	root       *node
	numClasses int
}

// TrainTree induces a C4.5 tree from a matrix with uniform weights.
func TrainTree(m *dataset.Matrix, cfg Config) (*Tree, error) {
	w := make([]float64, m.NumRows())
	for i := range w {
		w[i] = 1
	}
	return TrainTreeWeighted(m, w, cfg)
}

// TrainTreeWeighted induces a tree with per-instance weights.
func TrainTreeWeighted(m *dataset.Matrix, weights []float64, cfg Config) (*Tree, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if len(weights) != m.NumRows() {
		return nil, fmt.Errorf("c45: %d weights for %d rows", len(weights), m.NumRows())
	}
	if m.NumRows() == 0 {
		return nil, fmt.Errorf("c45: empty training set")
	}
	cfg = cfg.withDefaults()
	idx := make([]int, m.NumRows())
	for i := range idx {
		idx[i] = i
	}
	t := &Tree{numClasses: len(m.ClassNames)}
	t.root = t.build(m, weights, idx, cfg, 0)
	if cfg.Prune {
		t.prune(t.root, cfg.CF)
	}
	return t, nil
}

// classWeights sums instance weight per class.
func classWeights(m *dataset.Matrix, weights []float64, idx []int, k int) []float64 {
	out := make([]float64, k)
	for _, i := range idx {
		out[int(m.Labels[i])] += weights[i]
	}
	return out
}

func majority(cw []float64) (dataset.Label, float64, float64) {
	best, bestW, total := 0, -1.0, 0.0
	for c, w := range cw {
		total += w
		if w > bestW {
			best, bestW = c, w
		}
	}
	return dataset.Label(best), bestW, total
}

func wEntropy(cw []float64, total float64) float64 {
	if total <= 0 {
		return 0
	}
	h := 0.0
	for _, w := range cw {
		if w <= 0 {
			continue
		}
		p := w / total
		h -= p * math.Log2(p)
	}
	return h
}

// build grows the tree recursively (gain-ratio splits on continuous
// attributes).
func (t *Tree) build(m *dataset.Matrix, weights []float64, idx []int, cfg Config, depth int) *node {
	cw := classWeights(m, weights, idx, t.numClasses)
	label, bestW, total := majority(cw)
	n := &node{leaf: true, label: label, weight: total, errs: total - bestW}
	if total <= 0 || total-bestW == 0 {
		return n // pure or empty
	}
	if cfg.MaxDepth > 0 && depth >= cfg.MaxDepth {
		return n
	}
	if total < 2*cfg.MinLeaf {
		return n
	}

	gene, threshold, ok := t.bestSplit(m, weights, idx, cw, total, cfg)
	if !ok {
		return n
	}
	var left, right []int
	for _, i := range idx {
		if m.Values[i][gene] <= threshold {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		return n
	}
	n.leaf = false
	n.gene = gene
	n.threshold = threshold
	n.left = t.build(m, weights, left, cfg, depth+1)
	n.right = t.build(m, weights, right, cfg, depth+1)
	return n
}

// bestSplit finds the (gene, threshold) with the highest gain ratio
// among splits whose information gain is at least the average positive
// gain (the C4.5 heuristic).
func (t *Tree) bestSplit(m *dataset.Matrix, weights []float64, idx []int, cw []float64, total float64, cfg Config) (int, float64, bool) {
	baseH := wEntropy(cw, total)
	type split struct {
		gene      int
		threshold float64
		gain      float64
		ratio     float64
	}
	var cands []split
	vals := make([]struct {
		v float64
		l int
		w float64
	}, 0, len(idx))
	for g := 0; g < m.NumGenes(); g++ {
		vals = vals[:0]
		for _, i := range idx {
			vals = append(vals, struct {
				v float64
				l int
				w float64
			}{m.Values[i][g], int(m.Labels[i]), weights[i]})
		}
		sort.Slice(vals, func(a, b int) bool { return vals[a].v < vals[b].v })
		leftCW := make([]float64, t.numClasses)
		leftW := 0.0
		bestGain, bestRatio, bestThr := 0.0, 0.0, 0.0
		found := false
		for i := 0; i+1 < len(vals); i++ {
			leftCW[vals[i].l] += vals[i].w
			leftW += vals[i].w
			if vals[i].v == vals[i+1].v {
				continue
			}
			rightW := total - leftW
			if leftW < cfg.MinLeaf || rightW < cfg.MinLeaf {
				continue
			}
			rightCW := make([]float64, t.numClasses)
			for c := range rightCW {
				rightCW[c] = cw[c] - leftCW[c]
			}
			h := leftW/total*wEntropy(leftCW, leftW) + rightW/total*wEntropy(rightCW, rightW)
			gain := baseH - h
			if gain <= 1e-12 {
				continue
			}
			pl, pr := leftW/total, rightW/total
			splitInfo := -(pl*math.Log2(pl) + pr*math.Log2(pr))
			if splitInfo <= 1e-12 {
				continue
			}
			ratio := gain / splitInfo
			if !found || ratio > bestRatio {
				found = true
				bestGain, bestRatio = gain, ratio
				bestThr = (vals[i].v + vals[i+1].v) / 2
			}
		}
		if found {
			cands = append(cands, split{gene: g, threshold: bestThr, gain: bestGain, ratio: bestRatio})
		}
	}
	if len(cands) == 0 {
		return 0, 0, false
	}
	avgGain := 0.0
	for _, c := range cands {
		avgGain += c.gain
	}
	avgGain /= float64(len(cands))
	best := -1
	for i, c := range cands {
		if c.gain+1e-12 < avgGain {
			continue
		}
		if best < 0 || c.ratio > cands[best].ratio {
			best = i
		}
	}
	if best < 0 {
		best = 0
	}
	return cands[best].gene, cands[best].threshold, true
}

// prune applies subtree replacement using C4.5's pessimistic upper
// bound on leaf error.
func (t *Tree) prune(n *node, cf float64) (subtreeErr float64) {
	leafErr := pessimistic(n.errs, n.weight, cf)
	if n.leaf {
		return leafErr
	}
	childErr := t.prune(n.left, cf) + t.prune(n.right, cf)
	if leafErr <= childErr {
		n.leaf = true
		n.left, n.right = nil, nil
		return leafErr
	}
	return childErr
}

// pessimistic returns observed errors plus C4.5's AddErrs correction:
// the pessimistic total error estimate for a leaf covering `weight`
// instances with e observed errors at confidence factor cf.
func pessimistic(e, weight, cf float64) float64 {
	return e + addErrs(weight, e, cf)
}

// addErrs is a faithful port of C4.5's AddErrs (prune.c): the extra
// errors charged to a leaf under the CF-level binomial upper bound,
// with the exact forms for e = 0 and e < 1 and the normal approximation
// above.
func addErrs(n, e, cf float64) float64 {
	if n <= 0 {
		return 0
	}
	if e < 1e-6 {
		return n * (1 - math.Exp(math.Log(cf)/n))
	}
	if e < 0.9999 {
		v := n * (1 - math.Exp(math.Log(cf)/n))
		return v + e*(addErrs(n, 1, cf)-v)
	}
	if e+0.5 >= n {
		return 0.67 * (n - e)
	}
	z := zFor(cf)
	pr := (e + 0.5) / n
	val := pr + z*math.Sqrt(pr*(1-pr)/n)
	return n*val - e
}

// zFor converts a one-sided confidence factor to a normal quantile
// (table lookup with linear interpolation, matching C4.5's coarse
// table).
func zFor(cf float64) float64 {
	table := []struct{ cf, z float64 }{
		{0.0, 4.0}, {0.001, 3.09}, {0.005, 2.58}, {0.01, 2.33},
		{0.05, 1.65}, {0.10, 1.28}, {0.20, 0.84}, {0.25, 0.674},
		{0.40, 0.25}, {0.50, 0.0},
	}
	if cf <= 0 {
		return table[0].z
	}
	for i := 1; i < len(table); i++ {
		if cf <= table[i].cf {
			lo, hi := table[i-1], table[i]
			frac := (cf - lo.cf) / (hi.cf - lo.cf)
			return lo.z + frac*(hi.z-lo.z)
		}
	}
	return 0
}

// Predict classifies one sample (a gene value vector).
func (t *Tree) Predict(row []float64) dataset.Label {
	n := t.root
	for !n.leaf {
		if row[n.gene] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.label
}

// Depth returns the tree depth (a single leaf has depth 0).
func (t *Tree) Depth() int { return depthOf(t.root) }

func depthOf(n *node) int {
	if n == nil || n.leaf {
		return 0
	}
	l, r := depthOf(n.left), depthOf(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}

// Bagging is a bootstrap ensemble of C4.5 trees with majority voting.
type Bagging struct {
	trees      []*Tree
	numClasses int
}

// TrainBagging builds `rounds` trees on bootstrap resamples.
func TrainBagging(m *dataset.Matrix, cfg Config, rounds int, seed int64) (*Bagging, error) {
	if rounds < 1 {
		return nil, fmt.Errorf("c45: bagging needs >= 1 round, got %d", rounds)
	}
	rng := rand.New(rand.NewSource(seed))
	b := &Bagging{numClasses: len(m.ClassNames)}
	n := m.NumRows()
	for r := 0; r < rounds; r++ {
		w := make([]float64, n)
		for i := 0; i < n; i++ {
			w[rng.Intn(n)]++
		}
		t, err := TrainTreeWeighted(m, w, cfg)
		if err != nil {
			return nil, err
		}
		b.trees = append(b.trees, t)
	}
	return b, nil
}

// Predict majority-votes across the ensemble.
func (b *Bagging) Predict(row []float64) dataset.Label {
	votes := make([]int, b.numClasses)
	for _, t := range b.trees {
		votes[int(t.Predict(row))]++
	}
	best, bestV := 0, -1
	for c, v := range votes {
		if v > bestV {
			best, bestV = c, v
		}
	}
	return dataset.Label(best)
}

// Boosting is an AdaBoost.M1 ensemble of C4.5 trees.
type Boosting struct {
	trees      []*Tree
	alphas     []float64
	numClasses int
}

// TrainBoosting runs AdaBoost.M1 for up to `rounds` rounds.
func TrainBoosting(m *dataset.Matrix, cfg Config, rounds int, seed int64) (*Boosting, error) {
	if rounds < 1 {
		return nil, fmt.Errorf("c45: boosting needs >= 1 round, got %d", rounds)
	}
	n := m.NumRows()
	w := make([]float64, n)
	for i := range w {
		w[i] = 1.0 / float64(n)
	}
	b := &Boosting{numClasses: len(m.ClassNames)}
	for r := 0; r < rounds; r++ {
		scaled := make([]float64, n)
		for i := range w {
			scaled[i] = w[i] * float64(n)
		}
		t, err := TrainTreeWeighted(m, scaled, cfg)
		if err != nil {
			return nil, err
		}
		eps := 0.0
		wrong := make([]bool, n)
		for i := 0; i < n; i++ {
			if t.Predict(m.Values[i]) != m.Labels[i] {
				wrong[i] = true
				eps += w[i]
			}
		}
		if eps >= 0.5 {
			break // AdaBoost.M1 stops on weak-learner failure
		}
		if eps <= 0 {
			// Perfect round: keep it with a large finite weight and stop.
			b.trees = append(b.trees, t)
			b.alphas = append(b.alphas, 10)
			break
		}
		beta := eps / (1 - eps)
		b.trees = append(b.trees, t)
		b.alphas = append(b.alphas, math.Log(1/beta))
		total := 0.0
		for i := range w {
			if !wrong[i] {
				w[i] *= beta
			}
			total += w[i]
		}
		for i := range w {
			w[i] /= total
		}
	}
	if len(b.trees) == 0 {
		// First weak learner already failed: fall back to a single tree.
		t, err := TrainTree(m, cfg)
		if err != nil {
			return nil, err
		}
		b.trees = append(b.trees, t)
		b.alphas = append(b.alphas, 1)
	}
	return b, nil
}

// Predict takes the alpha-weighted vote.
func (b *Boosting) Predict(row []float64) dataset.Label {
	votes := make([]float64, b.numClasses)
	for i, t := range b.trees {
		votes[int(t.Predict(row))] += b.alphas[i]
	}
	best, bestV := 0, math.Inf(-1)
	for c, v := range votes {
		if v > bestV {
			best, bestV = c, v
		}
	}
	return dataset.Label(best)
}
