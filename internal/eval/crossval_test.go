package eval

import (
	"testing"

	"repro/internal/c45"
	"repro/internal/dataset"
	"repro/internal/rcbt"
	"repro/internal/synth"
)

func cvMatrix(t *testing.T) *dataset.Matrix {
	t.Helper()
	p := synth.Scaled(synth.ALL(), 100)
	train, test, err := synth.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	// Pool train+test for a bigger CV population.
	m := &dataset.Matrix{GeneNames: train.GeneNames, ClassNames: train.ClassNames}
	m.Values = append(append(m.Values, train.Values...), test.Values...)
	m.Labels = append(append(m.Labels, train.Labels...), test.Labels...)
	return m
}

type treePredictor struct{ t *c45.Tree }

func (p treePredictor) Predict(row []float64) dataset.Label { return p.t.Predict(row) }

func TestCrossValidateTree(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-validation in -short mode")
	}
	m := cvMatrix(t)
	res, err := CrossValidate(m, 4, 1, func(train *dataset.Matrix) (Predictor, error) {
		tree, err := c45.TrainTree(train, c45.DefaultConfig())
		if err != nil {
			return nil, err
		}
		return treePredictor{tree}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Folds) != 4 {
		t.Fatalf("folds = %d", len(res.Folds))
	}
	total := 0
	for _, f := range res.Folds {
		total += f.TestRows
	}
	if total != m.NumRows() {
		t.Fatalf("folds cover %d rows, want %d", total, m.NumRows())
	}
	if acc := res.MeanAccuracy(); acc < 0.6 {
		t.Fatalf("tree CV accuracy %.2f on separable data", acc)
	}
}

func TestCrossValidateRCBT(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-validation in -short mode")
	}
	m := cvMatrix(t)
	res, err := CrossValidate(m, 3, 7, TrainRCBT(rcbt.Config{
		K: 2, NL: 3, MinsupFrac: 0.7, LBMaxLen: 4, LBMaxCandidates: 1 << 14,
	}))
	if err != nil {
		t.Fatal(err)
	}
	if acc := res.MeanAccuracy(); acc < 0.6 {
		t.Fatalf("RCBT CV accuracy %.2f on separable data", acc)
	}
}

func TestCrossValidateStratified(t *testing.T) {
	// Every fold must contain both classes when the data allows it.
	m := cvMatrix(t)
	fold := make(map[int][]dataset.Label)
	_, err := CrossValidate(m, 3, 2, func(train *dataset.Matrix) (Predictor, error) {
		// Record class balance of the *training* complement per call.
		counts := []int{0, 0}
		for _, l := range train.Labels {
			counts[int(l)]++
		}
		fold[len(fold)] = append([]dataset.Label{}, dataset.Label(counts[0]), dataset.Label(counts[1]))
		return constPredictor(0), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for f, counts := range fold {
		if counts[0] == 0 || counts[1] == 0 {
			t.Fatalf("fold %d training set lost a class: %v", f, counts)
		}
	}
}

type constPredictor dataset.Label

func (c constPredictor) Predict([]float64) dataset.Label { return dataset.Label(c) }

func TestCrossValidateErrors(t *testing.T) {
	m := cvMatrix(t)
	if _, err := CrossValidate(m, 1, 0, nil); err == nil {
		t.Fatal("k=1 must error")
	}
	if _, err := CrossValidate(m, m.NumRows()+1, 0, nil); err == nil {
		t.Fatal("too many folds must error")
	}
	bad := &dataset.Matrix{GeneNames: []string{"g"}, ClassNames: []string{"a"}}
	if _, err := CrossValidate(bad, 2, 0, nil); err == nil {
		t.Fatal("invalid matrix must error")
	}
}

func TestCrossValidateDeterministic(t *testing.T) {
	m := cvMatrix(t)
	run := func() float64 {
		res, err := CrossValidate(m, 3, 42, func(train *dataset.Matrix) (Predictor, error) {
			return constPredictor(0), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.MeanAccuracy()
	}
	if run() != run() {
		t.Fatal("same seed must give identical folds")
	}
}
