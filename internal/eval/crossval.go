package eval

import (
	"fmt"
	"math/rand"

	"repro/internal/bitset"
	"repro/internal/dataset"
	"repro/internal/discretize"
	"repro/internal/rcbt"
)

// FoldResult is one cross-validation fold's outcome.
type FoldResult struct {
	Fold     int
	Accuracy float64
	TestRows int
}

// CVResult aggregates a cross-validation run.
type CVResult struct {
	Folds []FoldResult
}

// MeanAccuracy returns the row-weighted mean accuracy across folds.
func (c *CVResult) MeanAccuracy() float64 {
	correct, total := 0.0, 0
	for _, f := range c.Folds {
		correct += f.Accuracy * float64(f.TestRows)
		total += f.TestRows
	}
	if total == 0 {
		return 0
	}
	return correct / float64(total)
}

// Predictor classifies one sample (a gene-value row).
type Predictor interface {
	Predict(row []float64) dataset.Label
}

// TrainFunc builds a predictor from a training matrix.
type TrainFunc func(train *dataset.Matrix) (Predictor, error)

// CrossValidate runs stratified k-fold cross-validation of an arbitrary
// matrix-based classifier. Rows are shuffled deterministically by seed
// and assigned to folds per class, so every fold keeps the class ratio.
func CrossValidate(m *dataset.Matrix, k int, seed int64, train TrainFunc) (*CVResult, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if k < 2 {
		return nil, fmt.Errorf("eval: need k >= 2 folds, got %d", k)
	}
	if k > m.NumRows() {
		return nil, fmt.Errorf("eval: %d folds exceed %d rows", k, m.NumRows())
	}

	// Stratified fold assignment.
	fold := make([]int, m.NumRows())
	rng := rand.New(rand.NewSource(seed))
	for cls := 0; cls < len(m.ClassNames); cls++ {
		var rows []int
		for r, l := range m.Labels {
			if int(l) == cls {
				rows = append(rows, r)
			}
		}
		rng.Shuffle(len(rows), func(i, j int) { rows[i], rows[j] = rows[j], rows[i] })
		for i, r := range rows {
			fold[r] = i % k
		}
	}

	res := &CVResult{}
	for f := 0; f < k; f++ {
		var trainRows, testRows []int
		for r := 0; r < m.NumRows(); r++ {
			if fold[r] == f {
				testRows = append(testRows, r)
			} else {
				trainRows = append(trainRows, r)
			}
		}
		if len(testRows) == 0 {
			continue
		}
		trainM := selectRows(m, trainRows)
		pred, err := train(trainM)
		if err != nil {
			return nil, fmt.Errorf("eval: fold %d: %w", f, err)
		}
		correct := 0
		for _, r := range testRows {
			if pred.Predict(m.Values[r]) == m.Labels[r] {
				correct++
			}
		}
		res.Folds = append(res.Folds, FoldResult{
			Fold:     f,
			Accuracy: float64(correct) / float64(len(testRows)),
			TestRows: len(testRows),
		})
	}
	return res, nil
}

// selectRows copies a row subset of a matrix.
func selectRows(m *dataset.Matrix, rows []int) *dataset.Matrix {
	out := &dataset.Matrix{
		GeneNames:  m.GeneNames,
		ClassNames: m.ClassNames,
	}
	for _, r := range rows {
		out.Values = append(out.Values, m.Values[r])
		out.Labels = append(out.Labels, m.Labels[r])
	}
	return out
}

// TrainRCBT returns a TrainFunc that fits entropy-MDL discretization
// and an RCBT classifier on each fold's training matrix — the adapter
// that lets the rule-based pipeline run under CrossValidate.
func TrainRCBT(cfg rcbt.Config) TrainFunc {
	return func(train *dataset.Matrix) (Predictor, error) {
		dz, err := discretize.FitMatrix(train)
		if err != nil {
			return nil, err
		}
		dTrain, err := dz.Transform(train)
		if err != nil {
			return nil, err
		}
		c, err := rcbt.Train(dTrain, cfg)
		if err != nil {
			return nil, err
		}
		return &rcbtPredictor{dz: dz, c: c}, nil
	}
}

type rcbtPredictor struct {
	dz *discretize.Discretizer
	c  *rcbt.Classifier
}

func (p *rcbtPredictor) Predict(row []float64) dataset.Label {
	items := bitset.New(p.dz.NumItems())
	for _, it := range p.dz.RowItems(row) {
		items.Add(it)
	}
	label, _ := p.c.Predict(items)
	return label
}
