package eval

import (
	"math"
	"strings"
	"testing"

	"repro/internal/dataset"
)

func mustConfusion(t *testing.T, truth, preds []dataset.Label) *Confusion {
	t.Helper()
	c, err := NewConfusion([]string{"pos", "neg"}, truth, preds)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfusionBasics(t *testing.T) {
	truth := []dataset.Label{0, 0, 0, 1, 1}
	preds := []dataset.Label{0, 0, 1, 1, 0}
	c := mustConfusion(t, truth, preds)
	if c.Total() != 5 {
		t.Fatalf("Total = %d", c.Total())
	}
	if got := c.Counts[0][0]; got != 2 {
		t.Fatalf("TP = %d", got)
	}
	if got := c.Counts[0][1]; got != 1 {
		t.Fatalf("FN(pos) = %d", got)
	}
	if math.Abs(c.Accuracy()-0.6) > 1e-12 {
		t.Fatalf("Accuracy = %v", c.Accuracy())
	}
	if math.Abs(c.Recall(0)-2.0/3.0) > 1e-12 {
		t.Fatalf("Recall(0) = %v", c.Recall(0))
	}
	if math.Abs(c.Precision(0)-2.0/3.0) > 1e-12 {
		t.Fatalf("Precision(0) = %v", c.Precision(0))
	}
	wantBal := (2.0/3.0 + 0.5) / 2
	if math.Abs(c.BalancedAccuracy()-wantBal) > 1e-12 {
		t.Fatalf("BalancedAccuracy = %v, want %v", c.BalancedAccuracy(), wantBal)
	}
}

func TestConfusionEdgeCases(t *testing.T) {
	// Class never predicted and class absent from truth.
	c := mustConfusion(t, []dataset.Label{0, 0}, []dataset.Label{0, 0})
	if c.Recall(1) != 0 || c.Precision(1) != 0 {
		t.Fatal("absent class should have 0 recall/precision, not NaN")
	}
	empty, err := NewConfusion([]string{"a", "b"}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if empty.Accuracy() != 0 || empty.Total() != 0 {
		t.Fatal("empty confusion should be all zeros")
	}
}

func TestConfusionErrors(t *testing.T) {
	if _, err := NewConfusion([]string{"a", "b"}, []dataset.Label{0}, nil); err == nil {
		t.Fatal("length mismatch must error")
	}
	if _, err := NewConfusion([]string{"a", "b"}, []dataset.Label{5}, []dataset.Label{0}); err == nil {
		t.Fatal("out-of-range label must error")
	}
}

func TestConfusionString(t *testing.T) {
	c := mustConfusion(t, []dataset.Label{0, 1}, []dataset.Label{0, 1})
	s := c.String()
	if !strings.Contains(s, "true-pos") || !strings.Contains(s, "pred-neg") {
		t.Fatalf("String() = %q", s)
	}
}
