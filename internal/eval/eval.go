// Package eval is the end-to-end evaluation harness behind the Table 2
// / Figure 7 experiments: it turns a synthetic profile (or a supplied
// train/test matrix pair) into discretized datasets, trains every
// classifier the paper compares — RCBT, CBA, IRG, the C4.5 family, and
// SVM — and reports test accuracies plus the default-class statistics
// of Section 6.2.
package eval

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/c45"
	"repro/internal/cba"
	"repro/internal/dataset"
	"repro/internal/discretize"
	"repro/internal/irg"
	"repro/internal/rcbt"
	"repro/internal/svm"
	"repro/internal/synth"
)

// Options parameterizes a full evaluation run. Zero values select the
// paper's settings.
type Options struct {
	MinsupFrac  float64 // default 0.7
	K           int     // RCBT k, default 10
	NL          int     // RCBT nl, default 20
	IRGMinconf  float64 // default 0.8
	BagRounds   int     // default 10
	BoostRounds int     // default 10
	Seed        int64
	// LBMaxLen / LBMaxCandidates bound lower-bound searches.
	LBMaxLen        int
	LBMaxCandidates int
	// Workers is the RCBT mining worker count (0 or 1 = sequential;
	// accuracy is unaffected, only training wall time).
	Workers int
	// Skip disables named classifiers (keys of Result.Accuracy).
	Skip map[string]bool
}

func (o Options) withDefaults() Options {
	if o.MinsupFrac == 0 {
		o.MinsupFrac = 0.7
	}
	if o.K == 0 {
		o.K = 10
	}
	if o.NL == 0 {
		o.NL = 20
	}
	if o.IRGMinconf == 0 {
		o.IRGMinconf = 0.8
	}
	if o.BagRounds == 0 {
		o.BagRounds = 10
	}
	if o.BoostRounds == 0 {
		o.BoostRounds = 10
	}
	if o.LBMaxLen == 0 {
		o.LBMaxLen = 5 // the paper observes lower bounds of 1-5 items
	}
	if o.LBMaxCandidates == 0 {
		o.LBMaxCandidates = 1 << 18 // bounds FindLB work per rule group
	}
	return o
}

// Classifier names reported by Evaluate, in Table 2 column order.
const (
	NameRCBT     = "RCBT"
	NameCBA      = "CBA"
	NameIRG      = "IRG"
	NameC45      = "C4.5"
	NameBagging  = "Bagging"
	NameBoosting = "Boosting"
	NameSVM      = "SVM"
)

// Columns lists classifier names in Table 2 order.
func Columns() []string {
	return []string{NameRCBT, NameCBA, NameIRG, NameC45, NameBagging, NameBoosting, NameSVM}
}

// Result holds one dataset's evaluation.
type Result struct {
	Dataset string
	// Accuracy per classifier name; absent when skipped or failed.
	Accuracy map[string]float64
	// Errors per classifier name when training failed.
	Errors map[string]string
	// DefaultsUsed / DefaultErrors: rule-based classifiers' default
	// decisions on test data and how many were wrong.
	DefaultsUsed  map[string]int
	DefaultErrors map[string]int
	// StandbyUsed[j] = test rows decided by RCBT's j-th standby
	// classifier (index 0 = first standby, i.e. CL_2).
	StandbyUsed []int
	// GenesAfterDiscretization is Table 1's feature-selection output.
	GenesAfterDiscretization int
	NumItems                 int
	TrainRows, TestRows      int
}

// EvaluateProfile generates a synthetic profile and evaluates it.
func EvaluateProfile(p synth.Profile, opts Options) (*Result, error) {
	train, test, err := synth.Generate(p)
	if err != nil {
		return nil, err
	}
	res, err := Evaluate(train, test, opts)
	if err != nil {
		return nil, err
	}
	res.Dataset = p.Name
	return res, nil
}

// Evaluate discretizes the training matrix, trains all classifiers, and
// scores them on the test matrix.
func Evaluate(train, test *dataset.Matrix, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	dz, err := discretize.FitMatrix(train)
	if err != nil {
		return nil, fmt.Errorf("eval: discretize: %w", err)
	}
	dTrain, err := dz.Transform(train)
	if err != nil {
		return nil, fmt.Errorf("eval: transform train: %w", err)
	}
	dTest, err := dz.Transform(test)
	if err != nil {
		return nil, fmt.Errorf("eval: transform test: %w", err)
	}

	res := &Result{
		Accuracy:                 map[string]float64{},
		Errors:                   map[string]string{},
		DefaultsUsed:             map[string]int{},
		DefaultErrors:            map[string]int{},
		GenesAfterDiscretization: dz.NumSelectedGenes(),
		NumItems:                 dTrain.NumItems(),
		TrainRows:                train.NumRows(),
		TestRows:                 test.NumRows(),
	}

	skip := func(name string) bool { return opts.Skip[name] }

	if !skip(NameRCBT) {
		c, err := rcbt.Train(dTrain, rcbt.Config{
			K: opts.K, NL: opts.NL, MinsupFrac: opts.MinsupFrac,
			LBMaxLen: opts.LBMaxLen, LBMaxCandidates: opts.LBMaxCandidates,
			Workers: opts.Workers,
		})
		if err != nil {
			res.Errors[NameRCBT] = err.Error()
		} else {
			preds, stats := c.PredictDataset(dTest)
			res.Accuracy[NameRCBT] = accuracy(preds, dTest.Labels)
			res.DefaultsUsed[NameRCBT] = stats.Defaults
			res.DefaultErrors[NameRCBT] = defaultErrors(c, dTest)
			if len(stats.ByClassifier) > 1 {
				res.StandbyUsed = stats.ByClassifier[1:]
			}
		}
	}
	if !skip(NameCBA) {
		c, err := cba.Train(dTrain, cba.Config{
			MinsupFrac: opts.MinsupFrac, NL: 1,
			LBMaxLen: opts.LBMaxLen, LBMaxCandidates: opts.LBMaxCandidates,
		})
		if err != nil {
			res.Errors[NameCBA] = err.Error()
		} else {
			preds, defs := c.PredictDataset(dTest)
			res.Accuracy[NameCBA] = accuracy(preds, dTest.Labels)
			res.DefaultsUsed[NameCBA] = defs
			wrong := 0
			for r := 0; r < dTest.NumRows(); r++ {
				if lab, usedDef := c.Predict(dTest.RowItemSet(r)); usedDef && lab != dTest.Labels[r] {
					wrong++
				}
			}
			res.DefaultErrors[NameCBA] = wrong
		}
	}
	if !skip(NameIRG) {
		c, err := irg.Train(dTrain, irg.Config{
			MinsupFrac: opts.MinsupFrac, Minconf: opts.IRGMinconf, K: 1,
		})
		if err != nil {
			res.Errors[NameIRG] = err.Error()
		} else {
			preds, defs := c.PredictDataset(dTest)
			res.Accuracy[NameIRG] = accuracy(preds, dTest.Labels)
			res.DefaultsUsed[NameIRG] = defs
		}
	}

	// C4.5 family and SVM run on the genes selected by discretization,
	// with the original real values (Section 6.2's protocol).
	genes := dz.SelectedGenes()
	if len(genes) > 0 {
		mTrain := train.SelectGenes(genes)
		mTest := test.SelectGenes(genes)
		if !skip(NameC45) {
			t, err := c45.TrainTree(mTrain, c45.DefaultConfig())
			if err != nil {
				res.Errors[NameC45] = err.Error()
			} else {
				res.Accuracy[NameC45] = accuracyFn(t.Predict, mTest)
			}
		}
		if !skip(NameBagging) {
			b, err := c45.TrainBagging(mTrain, c45.DefaultConfig(), opts.BagRounds, opts.Seed)
			if err != nil {
				res.Errors[NameBagging] = err.Error()
			} else {
				res.Accuracy[NameBagging] = accuracyFn(b.Predict, mTest)
			}
		}
		if !skip(NameBoosting) {
			b, err := c45.TrainBoosting(mTrain, c45.DefaultConfig(), opts.BoostRounds, opts.Seed)
			if err != nil {
				res.Errors[NameBoosting] = err.Error()
			} else {
				res.Accuracy[NameBoosting] = accuracyFn(b.Predict, mTest)
			}
		}
		if !skip(NameSVM) {
			acc, err := bestSVM(mTrain, mTest, opts.Seed)
			if err != nil {
				res.Errors[NameSVM] = err.Error()
			} else {
				res.Accuracy[NameSVM] = acc
			}
		}
	}
	return res, nil
}

// bestSVM mirrors the paper's protocol: report the better of linear and
// polynomial kernels.
func bestSVM(train, test *dataset.Matrix, seed int64) (float64, error) {
	best := -1.0
	var firstErr error
	for _, k := range []svm.Kernel{svm.Linear, svm.Poly} {
		cfg := svm.DefaultConfig()
		cfg.Kernel = k
		cfg.Seed = seed
		m, err := svm.Train(train, cfg)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if acc := accuracyFn(m.Predict, test); acc > best {
			best = acc
		}
	}
	if best < 0 {
		return 0, firstErr
	}
	return best, nil
}

func accuracy(preds, labels []dataset.Label) float64 {
	if len(preds) == 0 {
		return 0
	}
	ok := 0
	for i := range preds {
		if preds[i] == labels[i] {
			ok++
		}
	}
	return float64(ok) / float64(len(preds))
}

func accuracyFn(pred func([]float64) dataset.Label, m *dataset.Matrix) float64 {
	ok := 0
	for i, row := range m.Values {
		if pred(row) == m.Labels[i] {
			ok++
		}
	}
	return float64(ok) / float64(m.NumRows())
}

// defaultErrors counts wrong default-class decisions of an RCBT model.
func defaultErrors(c *rcbt.Classifier, dTest *dataset.Dataset) int {
	wrong := 0
	for r := 0; r < dTest.NumRows(); r++ {
		if lab, idx := c.Predict(dTest.RowItemSet(r)); idx < 0 && lab != dTest.Labels[r] {
			wrong++
		}
	}
	return wrong
}

// FormatTable renders results as a Table 2-style text table, appending
// an average-accuracy row.
func FormatTable(results []*Result) string {
	cols := Columns()
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s", "Dataset")
	for _, c := range cols {
		fmt.Fprintf(&b, "%10s", c)
	}
	b.WriteByte('\n')
	sums := map[string]float64{}
	counts := map[string]int{}
	for _, r := range results {
		fmt.Fprintf(&b, "%-12s", r.Dataset)
		for _, c := range cols {
			if acc, ok := r.Accuracy[c]; ok {
				fmt.Fprintf(&b, "%9.2f%%", acc*100)
				sums[c] += acc
				counts[c]++
			} else {
				fmt.Fprintf(&b, "%10s", "-")
			}
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-12s", "Average")
	for _, c := range cols {
		if counts[c] > 0 {
			fmt.Fprintf(&b, "%9.2f%%", sums[c]/float64(counts[c])*100)
		} else {
			fmt.Fprintf(&b, "%10s", "-")
		}
	}
	b.WriteByte('\n')
	return b.String()
}

// SortedNames returns map keys sorted, for deterministic reports.
func SortedNames(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
