package eval

import (
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/synth"
)

func smallOpts() Options {
	return Options{
		K: 3, NL: 5, BagRounds: 3, BoostRounds: 3,
		LBMaxLen: 4, LBMaxCandidates: 100000,
	}
}

func TestEvaluateProfileSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end evaluation in -short mode")
	}
	p := synth.Scaled(synth.ALL(), 50)
	res, err := EvaluateProfile(p, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Dataset != p.Name {
		t.Fatalf("dataset name = %q", res.Dataset)
	}
	if res.TrainRows != 38 || res.TestRows != 34 {
		t.Fatalf("rows = (%d, %d)", res.TrainRows, res.TestRows)
	}
	for _, name := range []string{NameRCBT, NameCBA, NameC45, NameSVM} {
		acc, ok := res.Accuracy[name]
		if !ok {
			t.Fatalf("%s missing: %v", name, res.Errors)
		}
		if acc < 0.5 {
			t.Errorf("%s accuracy %.2f below chance on separable data", name, acc)
		}
	}
	if res.GenesAfterDiscretization == 0 {
		t.Fatal("discretization selected no genes")
	}
}

func TestSkip(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end evaluation in -short mode")
	}
	p := synth.Scaled(synth.ALL(), 100)
	opts := smallOpts()
	opts.Skip = map[string]bool{
		NameSVM: true, NameBagging: true, NameBoosting: true, NameIRG: true,
	}
	res, err := EvaluateProfile(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Accuracy[NameSVM]; ok {
		t.Fatal("SVM should be skipped")
	}
	if _, ok := res.Accuracy[NameRCBT]; !ok {
		t.Fatalf("RCBT should run: %v", res.Errors)
	}
}

func TestFormatTable(t *testing.T) {
	results := []*Result{
		{Dataset: "A", Accuracy: map[string]float64{NameRCBT: 0.95, NameCBA: 0.9}},
		{Dataset: "B", Accuracy: map[string]float64{NameRCBT: 0.85}},
	}
	out := FormatTable(results)
	if !strings.Contains(out, "Dataset") || !strings.Contains(out, "Average") {
		t.Fatalf("table missing headers:\n%s", out)
	}
	if !strings.Contains(out, "95.00%") || !strings.Contains(out, "90.00%") {
		t.Fatalf("table missing values:\n%s", out)
	}
	if !strings.Contains(out, "-") {
		t.Fatalf("missing placeholder for absent classifiers:\n%s", out)
	}
}

func TestSortedNames(t *testing.T) {
	m := map[string]float64{"b": 1, "a": 2}
	got := SortedNames(m)
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("SortedNames = %v", got)
	}
}

func TestWithDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.MinsupFrac != 0.7 || o.K != 10 || o.NL != 20 || o.IRGMinconf != 0.8 {
		t.Fatalf("defaults = %+v", o)
	}
	if o.BagRounds != 10 || o.BoostRounds != 10 || o.LBMaxLen != 5 || o.LBMaxCandidates == 0 {
		t.Fatalf("defaults = %+v", o)
	}
	// Explicit values survive.
	o2 := Options{MinsupFrac: 0.9, K: 2}.withDefaults()
	if o2.MinsupFrac != 0.9 || o2.K != 2 {
		t.Fatalf("overrides lost: %+v", o2)
	}
}

func TestEvaluateProfileInvalid(t *testing.T) {
	p := synth.ALL()
	p.Train1 = 0
	if _, err := EvaluateProfile(p, Options{}); err == nil {
		t.Fatal("invalid profile must error")
	}
}

func TestBestSVMErrorPath(t *testing.T) {
	// A single-sample training matrix makes both kernels fail.
	m := &dataset.Matrix{
		GeneNames:  []string{"g"},
		Values:     [][]float64{{1}},
		Labels:     []dataset.Label{0},
		ClassNames: []string{"a", "b"},
	}
	if _, err := bestSVM(m, m, 0); err == nil {
		t.Fatal("expected error from untrainable SVM")
	}
}
