package eval

import (
	"fmt"
	"strings"

	"repro/internal/dataset"
)

// Confusion is a square confusion matrix: Counts[t][p] = rows of true
// class t predicted as class p.
type Confusion struct {
	ClassNames []string
	Counts     [][]int
}

// NewConfusion tallies predictions against truth.
func NewConfusion(classNames []string, truth, preds []dataset.Label) (*Confusion, error) {
	if len(truth) != len(preds) {
		return nil, fmt.Errorf("eval: %d truths vs %d predictions", len(truth), len(preds))
	}
	k := len(classNames)
	c := &Confusion{ClassNames: append([]string(nil), classNames...)}
	c.Counts = make([][]int, k)
	for i := range c.Counts {
		c.Counts[i] = make([]int, k)
	}
	for i := range truth {
		t, p := int(truth[i]), int(preds[i])
		if t < 0 || t >= k || p < 0 || p >= k {
			return nil, fmt.Errorf("eval: label outside [0,%d) at row %d", k, i)
		}
		c.Counts[t][p]++
	}
	return c, nil
}

// Total returns the number of classified rows.
func (c *Confusion) Total() int {
	n := 0
	for _, row := range c.Counts {
		for _, v := range row {
			n += v
		}
	}
	return n
}

// Accuracy returns the overall fraction correct (0 for empty input).
func (c *Confusion) Accuracy() float64 {
	n := c.Total()
	if n == 0 {
		return 0
	}
	correct := 0
	for i := range c.Counts {
		correct += c.Counts[i][i]
	}
	return float64(correct) / float64(n)
}

// Recall returns class t's recall (sensitivity); 0 when the class is
// absent from the truth.
func (c *Confusion) Recall(t int) float64 {
	total := 0
	for _, v := range c.Counts[t] {
		total += v
	}
	if total == 0 {
		return 0
	}
	return float64(c.Counts[t][t]) / float64(total)
}

// Precision returns class p's precision; 0 when the class is never
// predicted.
func (c *Confusion) Precision(p int) float64 {
	total := 0
	for t := range c.Counts {
		total += c.Counts[t][p]
	}
	if total == 0 {
		return 0
	}
	return float64(c.Counts[p][p]) / float64(total)
}

// BalancedAccuracy returns the mean per-class recall — the robust
// summary for the imbalanced test splits of LC and PC.
func (c *Confusion) BalancedAccuracy() float64 {
	if len(c.Counts) == 0 {
		return 0
	}
	s := 0.0
	for t := range c.Counts {
		s += c.Recall(t)
	}
	return s / float64(len(c.Counts))
}

// String renders the matrix with class names.
func (c *Confusion) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s", "")
	for _, n := range c.ClassNames {
		fmt.Fprintf(&b, "%12s", "pred-"+n)
	}
	b.WriteByte('\n')
	for t, row := range c.Counts {
		fmt.Fprintf(&b, "%-12s", "true-"+c.ClassNames[t])
		for _, v := range row {
			fmt.Fprintf(&b, "%12d", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
