package dataset

import (
	"reflect"
	"testing"
)

func appendFixture() *Dataset {
	return &Dataset{
		Items: []Item{
			{Gene: 0, GeneName: "g0", Lo: 0, Hi: 1},
			{Gene: 0, GeneName: "g0", Lo: 1, Hi: 2},
			{Gene: 1, GeneName: "g1", Lo: 0, Hi: 1},
		},
		Rows:       [][]int{{0, 2}, {1}, {1, 2}},
		Labels:     []Label{0, 1, 1},
		ClassNames: []string{"a", "b"},
	}
}

func TestAppendRows(t *testing.T) {
	d := appendFixture()
	d.ItemRows(0) // build the index so the incremental-growth path runs

	nd, err := d.AppendRows([][]int{{0}, {1, 2}}, []Label{1, 0})
	if err != nil {
		t.Fatalf("AppendRows: %v", err)
	}
	if err := nd.Validate(); err != nil {
		t.Fatalf("appended dataset invalid: %v", err)
	}
	if nd.NumRows() != 5 || d.NumRows() != 3 {
		t.Fatalf("rows: new %d (want 5), old %d (want 3)", nd.NumRows(), d.NumRows())
	}
	if !reflect.DeepEqual(nd.Rows[3], []int{0}) || !reflect.DeepEqual(nd.Rows[4], []int{1, 2}) {
		t.Fatalf("appended rows %v", nd.Rows[3:])
	}

	// The incrementally grown index must equal a from-scratch build.
	fresh := &Dataset{Items: nd.Items, Rows: nd.Rows, Labels: nd.Labels, ClassNames: nd.ClassNames}
	for i := range nd.Items {
		if !nd.ItemRows(i).Equal(fresh.ItemRows(i)) {
			t.Fatalf("item %d: incremental index %v != fresh %v",
				i, nd.ItemRows(i).Indices(), fresh.ItemRows(i).Indices())
		}
	}
	// Old dataset's index is untouched.
	if d.ItemRows(0).Count() != 1 {
		t.Fatalf("old index mutated: item 0 in %d rows", d.ItemRows(0).Count())
	}
}

func TestAppendRowsLazyIndex(t *testing.T) {
	d := appendFixture() // index never built
	nd, err := d.AppendRows([][]int{{2}}, []Label{0})
	if err != nil {
		t.Fatalf("AppendRows: %v", err)
	}
	if got := nd.ItemRows(2).Count(); got != 3 {
		t.Fatalf("lazily built index: item 2 in %d rows, want 3", got)
	}
}

func TestAppendRowsRejectsBadInput(t *testing.T) {
	d := appendFixture()
	cases := []struct {
		rows   [][]int
		labels []Label
	}{
		{[][]int{{0}}, nil},           // length mismatch
		{[][]int{{2, 0}}, []Label{0}}, // unsorted
		{[][]int{{0, 0}}, []Label{0}}, // duplicate item
		{[][]int{{3}}, []Label{0}},    // item out of range
		{[][]int{{-1}}, []Label{0}},   // negative item
		{[][]int{{0}}, []Label{2}},    // label out of range
	}
	for i, c := range cases {
		if _, err := d.AppendRows(c.rows, c.labels); err == nil {
			t.Errorf("case %d: AppendRows accepted bad input", i)
		}
	}
}
