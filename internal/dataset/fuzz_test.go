package dataset

import (
	"strings"
	"testing"
)

// FuzzReadMatrix asserts the matrix parser never panics and that
// anything it accepts round-trips through WriteMatrix.
func FuzzReadMatrix(f *testing.F) {
	f.Add("#classes A B\n#genes g0 g1\nA\t1\t2\nB\t3\t4\n")
	f.Add("#classes A B\n#genes g\n// comment\nA -1e9\n")
	f.Add("")
	f.Add("#classes A\n#genes g\nA 1\n")
	f.Add("#genes g\n#classes A B\nA nope\n")
	f.Fuzz(func(t *testing.T, in string) {
		m, err := ReadMatrix(strings.NewReader(in))
		if err != nil {
			return
		}
		var sb strings.Builder
		if err := WriteMatrix(&sb, m); err != nil {
			t.Fatalf("accepted matrix failed to serialize: %v", err)
		}
		if _, err := ReadMatrix(strings.NewReader(sb.String())); err != nil {
			t.Fatalf("serialized matrix failed to re-parse: %v", err)
		}
	})
}

// FuzzReadDataset asserts the discrete-dataset parser never panics and
// that accepted inputs validate and round-trip.
func FuzzReadDataset(f *testing.F) {
	f.Add("#classes C notC\n#item 0 0 g 0 1\nC\t0\nnotC\n")
	f.Add("#classes C notC\n#item 0 0 g -Inf +Inf\nC 0\n")
	f.Add("#item 0 0 g 0 1\n")
	f.Add("#classes C notC\n#item 1 0 g 0 1\n")
	f.Fuzz(func(t *testing.T, in string) {
		d, err := ReadDataset(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("accepted dataset fails validation: %v", err)
		}
		var sb strings.Builder
		if err := WriteDataset(&sb, d); err != nil {
			t.Fatalf("accepted dataset failed to serialize: %v", err)
		}
		if _, err := ReadDataset(strings.NewReader(sb.String())); err != nil {
			t.Fatalf("serialized dataset failed to re-parse: %v", err)
		}
	})
}
