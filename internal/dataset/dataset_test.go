package dataset

import (
	"math"
	"reflect"
	"sort"
	"testing"
)

func TestRunningExampleShape(t *testing.T) {
	d, idx := RunningExample()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.NumRows() != 5 || d.NumItems() != 10 || d.NumClasses() != 2 {
		t.Fatalf("shape = (%d rows, %d items, %d classes)", d.NumRows(), d.NumItems(), d.NumClasses())
	}
	if d.ClassCount(0) != 3 || d.ClassCount(1) != 2 {
		t.Fatalf("class counts = (%d, %d), want (3, 2)", d.ClassCount(0), d.ClassCount(1))
	}
	if len(idx) != 10 {
		t.Fatalf("item index has %d entries", len(idx))
	}
}

func TestItemSupportSetsMatchFigure1b(t *testing.T) {
	d, idx := RunningExample()
	// Expected R(i) per Figure 1(b), rows 0-indexed.
	want := map[string][]int{
		"a": {0, 1}, "b": {0, 1}, "c": {0, 1, 2, 3}, "d": {0, 2, 3},
		"e": {0, 2, 3, 4}, "f": {2, 3, 4}, "g": {2, 3, 4}, "h": {4},
		"o": {1, 4}, "p": {1},
	}
	for name, rows := range want {
		got := d.ItemRows(idx[name]).Indices()
		if !reflect.DeepEqual(got, rows) {
			t.Errorf("R(%s) = %v, want %v", name, got, rows)
		}
	}
}

func TestSupportSetExample21(t *testing.T) {
	d, idx := RunningExample()
	// Example 2.1: R({c,d,e}) = {r1, r3, r4} (0-indexed: 0, 2, 3).
	got := d.SupportSet([]int{idx["c"], idx["d"], idx["e"]}).Indices()
	if !reflect.DeepEqual(got, []int{0, 2, 3}) {
		t.Fatalf("R(cde) = %v, want [0 2 3]", got)
	}
	// Empty itemset supports every row.
	if got := d.SupportSet(nil).Count(); got != 5 {
		t.Fatalf("R(∅) has %d rows, want 5", got)
	}
}

func TestCommonItemsExample21(t *testing.T) {
	d, idx := RunningExample()
	// Example 2.1: I({r1, r3}) = {c, d, e}.
	rows := d.RowSet(0)
	rows.Clear()
	rows.Add(0)
	rows.Add(2)
	got := d.CommonItems(rows)
	want := []int{idx["c"], idx["d"], idx["e"]}
	sort.Ints(want)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("I({r1,r3}) = %v, want %v", got, want)
	}
}

func TestRowSetAndRowItemSet(t *testing.T) {
	d, idx := RunningExample()
	if got := d.RowSet(0).Indices(); !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Fatalf("RowSet(C) = %v", got)
	}
	if got := d.RowSet(1).Indices(); !reflect.DeepEqual(got, []int{3, 4}) {
		t.Fatalf("RowSet(notC) = %v", got)
	}
	r5 := d.RowItemSet(4)
	for _, n := range []string{"e", "f", "g", "h", "o"} {
		if !r5.Contains(idx[n]) {
			t.Errorf("row 5 should contain %s", n)
		}
	}
	if r5.Count() != 5 {
		t.Fatalf("row 5 has %d items, want 5", r5.Count())
	}
}

func TestSubsetAndReorder(t *testing.T) {
	d, _ := RunningExample()
	sub := d.Subset([]int{4, 0})
	if sub.NumRows() != 2 {
		t.Fatalf("subset rows = %d", sub.NumRows())
	}
	if sub.Labels[0] != 1 || sub.Labels[1] != 0 {
		t.Fatalf("subset labels = %v", sub.Labels)
	}
	if !reflect.DeepEqual(sub.Rows[1], d.Rows[0]) {
		t.Fatal("subset row content mismatch")
	}
	re := d.Reorder([]int{4, 3, 2, 1, 0})
	if !reflect.DeepEqual(re.Rows[0], d.Rows[4]) {
		t.Fatal("reorder row content mismatch")
	}
	// Mutating the subset must not affect the original.
	sub.Rows[0][0] = 999
	if d.Rows[4][0] == 999 {
		t.Fatal("Subset must copy row slices")
	}
}

func TestReorderBadPermPanics(t *testing.T) {
	d, _ := RunningExample()
	defer func() {
		if recover() == nil {
			t.Fatal("Reorder with wrong length should panic")
		}
	}()
	d.Reorder([]int{0, 1})
}

func TestFilterItems(t *testing.T) {
	d, idx := RunningExample()
	// Keep only items with support >= 3: c, d, e, f, g.
	nd, newToOld := d.FilterItems(func(i int) bool { return d.ItemSupport(i) >= 3 })
	if nd.NumItems() != 5 {
		t.Fatalf("filtered items = %d, want 5", nd.NumItems())
	}
	wantOld := []int{idx["c"], idx["d"], idx["e"], idx["f"], idx["g"]}
	if !reflect.DeepEqual(newToOld, wantOld) {
		t.Fatalf("newToOld = %v, want %v", newToOld, wantOld)
	}
	// Row 2 (r2) had a,b,c,o,p -> only c survives.
	if len(nd.Rows[1]) != 1 || nd.Items[nd.Rows[1][0]].GeneName != "c" {
		t.Fatalf("filtered r2 = %v", nd.Rows[1])
	}
	if err := nd.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestItemMatchesAndString(t *testing.T) {
	it := Item{Gene: 0, GeneName: "X95735_at", Lo: math.Inf(-1), Hi: 994}
	if !it.Matches(-1e9) || !it.Matches(993.9) {
		t.Fatal("values below Hi should match")
	}
	if it.Matches(994) {
		t.Fatal("Hi is exclusive")
	}
	if got := it.String(); got != "X95735_at[-inf,994)" {
		t.Fatalf("String() = %q", got)
	}
	it2 := Item{GeneName: "g", Lo: 1, Hi: math.Inf(1)}
	if got := it2.String(); got != "g[1,+inf)" {
		t.Fatalf("String() = %q", got)
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		d    *Dataset
	}{
		{"label count mismatch", &Dataset{
			Items:      []Item{{}},
			Rows:       [][]int{{0}},
			Labels:     nil,
			ClassNames: []string{"a", "b"},
		}},
		{"unsorted row", &Dataset{
			Items:      []Item{{}, {}},
			Rows:       [][]int{{1, 0}},
			Labels:     []Label{0},
			ClassNames: []string{"a", "b"},
		}},
		{"duplicate item in row", &Dataset{
			Items:      []Item{{}, {}},
			Rows:       [][]int{{0, 0}},
			Labels:     []Label{0},
			ClassNames: []string{"a", "b"},
		}},
		{"item id out of range", &Dataset{
			Items:      []Item{{}},
			Rows:       [][]int{{5}},
			Labels:     []Label{0},
			ClassNames: []string{"a", "b"},
		}},
		{"label out of range", &Dataset{
			Items:      []Item{{}},
			Rows:       [][]int{{0}},
			Labels:     []Label{7},
			ClassNames: []string{"a", "b"},
		}},
		{"single class", &Dataset{
			Items:      []Item{{}},
			Rows:       [][]int{{0}},
			Labels:     []Label{0},
			ClassNames: []string{"only"},
		}},
	}
	for _, c := range cases {
		if err := c.d.Validate(); err == nil {
			t.Errorf("%s: Validate() accepted malformed dataset", c.name)
		}
	}
}

func TestMatrixBasics(t *testing.T) {
	m := &Matrix{
		GeneNames:  []string{"g0", "g1", "g2"},
		Values:     [][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}},
		Labels:     []Label{0, 1, 0},
		ClassNames: []string{"pos", "neg"},
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.NumRows() != 3 || m.NumGenes() != 3 {
		t.Fatalf("shape = (%d, %d)", m.NumRows(), m.NumGenes())
	}
	if m.ClassCount(0) != 2 {
		t.Fatalf("ClassCount(0) = %d", m.ClassCount(0))
	}
	if got := m.Column(1); !reflect.DeepEqual(got, []float64{2, 5, 8}) {
		t.Fatalf("Column(1) = %v", got)
	}
	sel := m.SelectGenes([]int{2, 0})
	if !reflect.DeepEqual(sel.GeneNames, []string{"g2", "g0"}) {
		t.Fatalf("SelectGenes names = %v", sel.GeneNames)
	}
	if !reflect.DeepEqual(sel.Values[1], []float64{6, 4}) {
		t.Fatalf("SelectGenes row 1 = %v", sel.Values[1])
	}
	// Mutating the selection must not touch the original.
	sel.Values[0][0] = -1
	if m.Values[0][2] == -1 {
		t.Fatal("SelectGenes must copy values")
	}
}

func TestMatrixValidateRejects(t *testing.T) {
	bad := []*Matrix{
		{GeneNames: []string{"g"}, Values: [][]float64{{1, 2}}, Labels: []Label{0}, ClassNames: []string{"a", "b"}},
		{GeneNames: []string{"g"}, Values: [][]float64{{math.NaN()}}, Labels: []Label{0}, ClassNames: []string{"a", "b"}},
		{GeneNames: []string{"g"}, Values: [][]float64{{1}}, Labels: []Label{5}, ClassNames: []string{"a", "b"}},
		{GeneNames: []string{"g"}, Values: [][]float64{{1}}, Labels: []Label{0}, ClassNames: []string{"a"}},
		{GeneNames: []string{"g"}, Values: [][]float64{{1}, {2}}, Labels: []Label{0}, ClassNames: []string{"a", "b"}},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: Validate() accepted malformed matrix", i)
		}
	}
}
