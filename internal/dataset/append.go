package dataset

import (
	"fmt"
	"sort"

	"repro/internal/bitset"
)

// AppendRows returns a new dataset sharing d's item table and existing
// row slices, with the given rows appended. d itself is never mutated —
// versioned snapshots stay immutable — and when d's transposed
// item→rows index has already been built, the new dataset's index is
// derived incrementally: each item's row bitset is regrown to the new
// row count and only the appended rows' bits are added, instead of
// re-scanning every row of the table. This is the fast path of the
// datastore's incremental refresh, taken when an append changes no
// gene's cut points (the common case for small appends).
func (d *Dataset) AppendRows(rows [][]int, labels []Label) (*Dataset, error) {
	if len(rows) != len(labels) {
		return nil, fmt.Errorf("dataset: append: %d rows but %d labels", len(rows), len(labels))
	}
	for i, row := range rows {
		if !sort.IntsAreSorted(row) {
			return nil, fmt.Errorf("dataset: append: row %d items not sorted", i)
		}
		for j, it := range row {
			if it < 0 || it >= len(d.Items) {
				return nil, fmt.Errorf("dataset: append: row %d references item %d outside [0,%d)",
					i, it, len(d.Items))
			}
			if j > 0 && row[j-1] == it {
				return nil, fmt.Errorf("dataset: append: row %d has duplicate item %d", i, it)
			}
		}
		if int(labels[i]) < 0 || int(labels[i]) >= len(d.ClassNames) {
			return nil, fmt.Errorf("dataset: append: row %d label %d outside [0,%d)",
				i, labels[i], len(d.ClassNames))
		}
	}
	old := len(d.Rows)
	nd := &Dataset{
		Items:      d.Items,
		Rows:       make([][]int, 0, old+len(rows)),
		Labels:     make([]Label, 0, old+len(labels)),
		ClassNames: d.ClassNames,
	}
	nd.Rows = append(append(nd.Rows, d.Rows...), rows...)
	nd.Labels = append(append(nd.Labels, d.Labels...), labels...)
	if d.itemRows != nil {
		idx := make([]*bitset.Set, len(d.Items))
		for i, s := range d.itemRows {
			grown := bitset.New(len(nd.Rows))
			s.ForEach(func(r int) bool {
				grown.Add(r)
				return true
			})
			idx[i] = grown
		}
		for j, row := range rows {
			for _, it := range row {
				idx[it].Add(old + j)
			}
		}
		nd.itemRows = idx
	}
	return nd, nil
}
