// Package dataset defines the data model shared by every miner and
// classifier in this repository: real-valued gene expression matrices
// (rows are clinical samples, columns are genes) and their discretized
// form, where each gene expression interval becomes an item and each row
// becomes an itemset with a class label.
package dataset

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/bitset"
)

// Label identifies a class. The paper's datasets are binary: by
// convention label 0 is "class 1" in the paper's tables (the specified
// consequent) and label 1 is "class 0".
type Label int

// Matrix is a real-valued gene expression profile: Values[r][g] is the
// expression level of gene g in sample r.
type Matrix struct {
	GeneNames  []string
	Values     [][]float64
	Labels     []Label
	ClassNames []string
}

// NumRows returns the number of samples.
func (m *Matrix) NumRows() int { return len(m.Values) }

// NumGenes returns the number of genes (columns).
func (m *Matrix) NumGenes() int { return len(m.GeneNames) }

// Validate checks structural invariants and returns a descriptive error
// for malformed matrices.
func (m *Matrix) Validate() error {
	if len(m.Values) != len(m.Labels) {
		return fmt.Errorf("dataset: %d value rows but %d labels", len(m.Values), len(m.Labels))
	}
	for r, row := range m.Values {
		if len(row) != len(m.GeneNames) {
			return fmt.Errorf("dataset: row %d has %d values, want %d", r, len(row), len(m.GeneNames))
		}
		for g, v := range row {
			if math.IsNaN(v) {
				return fmt.Errorf("dataset: NaN at row %d gene %d", r, g)
			}
		}
	}
	for r, l := range m.Labels {
		if int(l) < 0 || int(l) >= len(m.ClassNames) {
			return fmt.Errorf("dataset: row %d has label %d outside [0,%d)", r, l, len(m.ClassNames))
		}
	}
	if len(m.ClassNames) < 2 {
		return fmt.Errorf("dataset: need at least 2 classes, have %d", len(m.ClassNames))
	}
	return nil
}

// ClassCount returns the number of rows labelled l.
func (m *Matrix) ClassCount(l Label) int {
	c := 0
	for _, x := range m.Labels {
		if x == l {
			c++
		}
	}
	return c
}

// Column returns a copy of gene g's expression values across all rows.
func (m *Matrix) Column(g int) []float64 {
	col := make([]float64, len(m.Values))
	for r, row := range m.Values {
		col[r] = row[g]
	}
	return col
}

// SelectGenes returns a new matrix restricted to the given gene indices
// (in the given order). Values are copied.
func (m *Matrix) SelectGenes(genes []int) *Matrix {
	sel := &Matrix{
		GeneNames:  make([]string, len(genes)),
		Values:     make([][]float64, len(m.Values)),
		Labels:     append([]Label(nil), m.Labels...),
		ClassNames: append([]string(nil), m.ClassNames...),
	}
	for j, g := range genes {
		sel.GeneNames[j] = m.GeneNames[g]
	}
	for r, row := range m.Values {
		nr := make([]float64, len(genes))
		for j, g := range genes {
			nr[j] = row[g]
		}
		sel.Values[r] = nr
	}
	return sel
}

// Item is one gene expression interval. Lo is inclusive, Hi exclusive;
// ±Inf mark unbounded ends. An item reads as gene[Lo,Hi).
type Item struct {
	Gene     int     // index into the originating matrix's genes
	GeneName string  // carried for reporting
	Lo, Hi   float64 // half-open interval [Lo, Hi)
}

// Matches reports whether expression value v falls in the item's interval.
func (it Item) Matches(v float64) bool { return v >= it.Lo && v < it.Hi }

// String renders the item in the paper's gene[a,b] notation.
func (it Item) String() string {
	lo, hi := "-inf", "+inf"
	if !math.IsInf(it.Lo, -1) {
		lo = fmt.Sprintf("%g", it.Lo)
	}
	if !math.IsInf(it.Hi, 1) {
		hi = fmt.Sprintf("%g", it.Hi)
	}
	return fmt.Sprintf("%s[%s,%s)", it.GeneName, lo, hi)
}

// Dataset is a discretized table: each row is a sorted set of item ids
// plus a class label. It is the input to all rule miners.
type Dataset struct {
	Items      []Item
	Rows       [][]int // sorted ascending item ids
	Labels     []Label
	ClassNames []string

	itemRows []*bitset.Set // lazily built: itemRows[i] = rows containing item i
}

// NumRows returns the number of rows (samples).
func (d *Dataset) NumRows() int { return len(d.Rows) }

// NumItems returns the number of distinct items.
func (d *Dataset) NumItems() int { return len(d.Items) }

// NumClasses returns the number of classes.
func (d *Dataset) NumClasses() int { return len(d.ClassNames) }

// Validate checks structural invariants.
func (d *Dataset) Validate() error {
	if len(d.Rows) != len(d.Labels) {
		return fmt.Errorf("dataset: %d rows but %d labels", len(d.Rows), len(d.Labels))
	}
	for r, row := range d.Rows {
		if !sort.IntsAreSorted(row) {
			return fmt.Errorf("dataset: row %d items not sorted", r)
		}
		for j, it := range row {
			if it < 0 || it >= len(d.Items) {
				return fmt.Errorf("dataset: row %d references item %d outside [0,%d)", r, it, len(d.Items))
			}
			if j > 0 && row[j-1] == it {
				return fmt.Errorf("dataset: row %d has duplicate item %d", r, it)
			}
		}
	}
	for r, l := range d.Labels {
		if int(l) < 0 || int(l) >= len(d.ClassNames) {
			return fmt.Errorf("dataset: row %d label %d outside [0,%d)", r, l, len(d.ClassNames))
		}
	}
	if len(d.ClassNames) < 2 {
		return fmt.Errorf("dataset: need at least 2 classes, have %d", len(d.ClassNames))
	}
	return nil
}

// buildIndex populates the item→rows inverted index.
func (d *Dataset) buildIndex() {
	d.itemRows = make([]*bitset.Set, len(d.Items))
	for i := range d.Items {
		d.itemRows[i] = bitset.New(len(d.Rows))
	}
	for r, row := range d.Rows {
		for _, it := range row {
			d.itemRows[it].Add(r)
		}
	}
}

// ItemRows returns the set of rows containing item i (the item support
// set R({i})). The returned set is shared; callers must not mutate it.
func (d *Dataset) ItemRows(i int) *bitset.Set {
	if d.itemRows == nil {
		d.buildIndex()
	}
	return d.itemRows[i]
}

// ItemSupport returns |R({i})|.
func (d *Dataset) ItemSupport(i int) int { return d.ItemRows(i).Count() }

// RowSet returns a fresh bitset over rows containing exactly the rows
// whose label is l.
func (d *Dataset) RowSet(l Label) *bitset.Set {
	s := bitset.New(len(d.Rows))
	for r, x := range d.Labels {
		if x == l {
			s.Add(r)
		}
	}
	return s
}

// ClassCount returns the number of rows labelled l.
func (d *Dataset) ClassCount(l Label) int {
	c := 0
	for _, x := range d.Labels {
		if x == l {
			c++
		}
	}
	return c
}

// RowItemSet returns row r's items as a bitset over the item universe.
func (d *Dataset) RowItemSet(r int) *bitset.Set {
	s := bitset.New(len(d.Items))
	for _, it := range d.Rows[r] {
		s.Add(it)
	}
	return s
}

// RowItemSetInto overwrites s (a set over the item universe) with row
// r's items — the reusable-scratch form of RowItemSet prediction loops
// use to stay allocation-free across rows.
//
//vet:allocfree
func (d *Dataset) RowItemSetInto(r int, s *bitset.Set) {
	s.Clear()
	for _, it := range d.Rows[r] {
		s.Add(it)
	}
}

// SupportSet returns R(A): the set of rows containing every item in A.
// A nil or empty A yields all rows.
func (d *Dataset) SupportSet(items []int) *bitset.Set {
	s := bitset.New(len(d.Rows))
	s.Fill()
	for _, it := range items {
		s.IntersectWith(d.ItemRows(it))
	}
	return s
}

// CommonItems returns I(R'): the largest itemset common to every row in
// rows. An empty row set yields all items.
func (d *Dataset) CommonItems(rows *bitset.Set) []int {
	var out []int
	for i := range d.Items {
		if d.ItemRows(i).ContainsAll(rows) {
			out = append(out, i)
		}
	}
	return out
}

// Subset returns a new dataset containing only the given rows (in the
// given order). The item table is shared; the inverted index is rebuilt
// lazily for the subset.
func (d *Dataset) Subset(rows []int) *Dataset {
	sub := &Dataset{
		Items:      d.Items,
		Rows:       make([][]int, len(rows)),
		Labels:     make([]Label, len(rows)),
		ClassNames: d.ClassNames,
	}
	for i, r := range rows {
		sub.Rows[i] = append([]int(nil), d.Rows[r]...)
		sub.Labels[i] = d.Labels[r]
	}
	return sub
}

// Reorder returns a new dataset with rows permuted according to perm:
// new row i is old row perm[i].
func (d *Dataset) Reorder(perm []int) *Dataset {
	if len(perm) != len(d.Rows) {
		// vetsuite:allow panic -- programmer-error precondition, not data-dependent
		panic(fmt.Sprintf("dataset: permutation length %d != %d rows", len(perm), len(d.Rows)))
	}
	return d.Subset(perm)
}

// FilterItems returns a new dataset keeping only items for which keep
// returns true, with item ids compacted. The second return value maps
// new item ids to old ones.
func (d *Dataset) FilterItems(keep func(item int) bool) (*Dataset, []int) {
	oldToNew := make([]int, len(d.Items))
	var newToOld []int
	var items []Item
	for i := range d.Items {
		if keep(i) {
			oldToNew[i] = len(items)
			items = append(items, d.Items[i])
			newToOld = append(newToOld, i)
		} else {
			oldToNew[i] = -1
		}
	}
	nd := &Dataset{
		Items:      items,
		Rows:       make([][]int, len(d.Rows)),
		Labels:     append([]Label(nil), d.Labels...),
		ClassNames: d.ClassNames,
	}
	for r, row := range d.Rows {
		var nr []int
		for _, it := range row {
			if oldToNew[it] >= 0 {
				nr = append(nr, oldToNew[it])
			}
		}
		nd.Rows[r] = nr
	}
	return nd, newToOld
}

// ItemNames renders a slice of item ids in the paper's notation.
func (d *Dataset) ItemNames(items []int) []string {
	out := make([]string, len(items))
	for j, it := range items {
		out[j] = d.Items[it].String()
	}
	return out
}
