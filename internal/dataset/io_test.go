package dataset

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestMatrixRoundTrip(t *testing.T) {
	m := &Matrix{
		GeneNames:  []string{"g0", "g1"},
		Values:     [][]float64{{1.5, -2}, {0.25, 1e6}},
		Labels:     []Label{0, 1},
		ClassNames: []string{"ALL", "AML"},
	}
	var sb strings.Builder
	if err := WriteMatrix(&sb, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMatrix(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, m)
	}
}

func TestReadMatrixCommentsAndBlankLines(t *testing.T) {
	in := `
// a comment
#classes A B

#genes g0
A	1
B	2
`
	m, err := ReadMatrix(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.NumRows() != 2 {
		t.Fatalf("rows = %d, want 2", m.NumRows())
	}
}

func TestReadMatrixErrors(t *testing.T) {
	cases := map[string]string{
		"data before headers": "A 1 2\n",
		"unknown class":       "#classes A B\n#genes g0\nZZ 1\n",
		"wrong value count":   "#classes A B\n#genes g0 g1\nA 1\n",
		"bad float":           "#classes A B\n#genes g0\nA xyz\n",
	}
	for name, in := range cases {
		if _, err := ReadMatrix(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestDatasetRoundTrip(t *testing.T) {
	d, _ := RunningExample()
	var sb strings.Builder
	if err := WriteDataset(&sb, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDataset(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Rows, d.Rows) || !reflect.DeepEqual(got.Labels, d.Labels) {
		t.Fatal("round trip rows/labels mismatch")
	}
	if len(got.Items) != len(d.Items) {
		t.Fatalf("items = %d, want %d", len(got.Items), len(d.Items))
	}
	for i := range got.Items {
		if got.Items[i] != d.Items[i] {
			t.Fatalf("item %d mismatch: %+v vs %+v", i, got.Items[i], d.Items[i])
		}
	}
}

func TestDatasetRoundTripInfinities(t *testing.T) {
	d := &Dataset{
		Items: []Item{
			{Gene: 0, GeneName: "g", Lo: math.Inf(-1), Hi: 5},
			{Gene: 0, GeneName: "g", Lo: 5, Hi: math.Inf(1)},
		},
		Rows:       [][]int{{0}, {1}},
		Labels:     []Label{0, 1},
		ClassNames: []string{"C", "notC"},
	}
	var sb strings.Builder
	if err := WriteDataset(&sb, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDataset(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(got.Items[0].Lo, -1) || !math.IsInf(got.Items[1].Hi, 1) {
		t.Fatalf("infinities not preserved: %+v", got.Items)
	}
}

func TestReadDatasetErrors(t *testing.T) {
	cases := map[string]string{
		"non-dense item ids": "#classes A B\n#item 3 0 g 0 1\n",
		"short item line":    "#classes A B\n#item 0 0 g\n",
		"unknown class":      "#classes A B\n#item 0 0 g 0 1\nZZ 0\n",
		"bad item ref":       "#classes A B\n#item 0 0 g 0 1\nA zz\n",
		"out of range item":  "#classes A B\n#item 0 0 g 0 1\nA 5\n",
	}
	for name, in := range cases {
		if _, err := ReadDataset(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}
