package dataset

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The matrix text format is line oriented:
//
//	#classes <name0> <name1> ...
//	#genes <g0> <g1> ...
//	<className> <v0> <v1> ... (one line per sample)
//
// Fields are tab- or space-separated. Lines starting with "//" are
// comments. This mirrors the flat layout of the public microarray
// distributions (samples as rows after transposition).

// WriteMatrix serializes m in the matrix text format.
func WriteMatrix(w io.Writer, m *Matrix) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "#classes %s\n", strings.Join(m.ClassNames, " "))
	fmt.Fprintf(bw, "#genes %s\n", strings.Join(m.GeneNames, " "))
	for r, row := range m.Values {
		fmt.Fprintf(bw, "%s", m.ClassNames[m.Labels[r]])
		for _, v := range row {
			fmt.Fprintf(bw, "\t%g", v)
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// ReadMatrix parses the matrix text format.
func ReadMatrix(r io.Reader) (*Matrix, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	m := &Matrix{}
	classIdx := map[string]Label{}
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "//") {
			continue
		}
		fields := strings.Fields(text)
		switch {
		case fields[0] == "#classes":
			m.ClassNames = fields[1:]
			for i, c := range m.ClassNames {
				classIdx[c] = Label(i)
			}
		case fields[0] == "#genes":
			m.GeneNames = fields[1:]
		default:
			if m.ClassNames == nil || m.GeneNames == nil {
				return nil, fmt.Errorf("dataset: line %d: data before #classes/#genes headers", line)
			}
			lab, ok := classIdx[fields[0]]
			if !ok {
				return nil, fmt.Errorf("dataset: line %d: unknown class %q", line, fields[0])
			}
			if len(fields)-1 != len(m.GeneNames) {
				return nil, fmt.Errorf("dataset: line %d: %d values, want %d", line, len(fields)-1, len(m.GeneNames))
			}
			vals := make([]float64, len(fields)-1)
			for i, f := range fields[1:] {
				v, err := strconv.ParseFloat(f, 64)
				if err != nil {
					return nil, fmt.Errorf("dataset: line %d: bad value %q: %w", line, f, err)
				}
				vals[i] = v
			}
			m.Values = append(m.Values, vals)
			m.Labels = append(m.Labels, lab)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: read: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// WriteDataset serializes a discretized dataset. Format:
//
//	#classes <names...>
//	#item <id> <geneIndex> <geneName> <lo> <hi>   (one per item)
//	<className> <itemId> <itemId> ...             (one per row)
func WriteDataset(w io.Writer, d *Dataset) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "#classes %s\n", strings.Join(d.ClassNames, " "))
	for i, it := range d.Items {
		fmt.Fprintf(bw, "#item %d %d %s %g %g\n", i, it.Gene, it.GeneName, it.Lo, it.Hi)
	}
	for r, row := range d.Rows {
		fmt.Fprintf(bw, "%s", d.ClassNames[d.Labels[r]])
		for _, it := range row {
			fmt.Fprintf(bw, "\t%d", it)
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// ReadDataset parses the discretized dataset format.
func ReadDataset(r io.Reader) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	d := &Dataset{}
	classIdx := map[string]Label{}
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "//") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "#classes":
			d.ClassNames = fields[1:]
			for i, c := range d.ClassNames {
				classIdx[c] = Label(i)
			}
		case "#item":
			if len(fields) != 6 {
				return nil, fmt.Errorf("dataset: line %d: #item needs 5 fields", line)
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil || id != len(d.Items) {
				return nil, fmt.Errorf("dataset: line %d: item ids must be dense ascending", line)
			}
			gene, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d: bad gene index %q", line, fields[2])
			}
			lo, err := strconv.ParseFloat(fields[4], 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d: bad lo %q", line, fields[4])
			}
			hi, err := strconv.ParseFloat(fields[5], 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d: bad hi %q", line, fields[5])
			}
			d.Items = append(d.Items, Item{Gene: gene, GeneName: fields[3], Lo: lo, Hi: hi})
		default:
			lab, ok := classIdx[fields[0]]
			if !ok {
				return nil, fmt.Errorf("dataset: line %d: unknown class %q", line, fields[0])
			}
			row := make([]int, 0, len(fields)-1)
			for _, f := range fields[1:] {
				it, err := strconv.Atoi(f)
				if err != nil {
					return nil, fmt.Errorf("dataset: line %d: bad item id %q", line, f)
				}
				row = append(row, it)
			}
			d.Rows = append(d.Rows, row)
			d.Labels = append(d.Labels, lab)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: read: %w", err)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}
