package dataset

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/bitset"
)

// The row/item support operators form a Galois connection; the paper's
// entire row-enumeration approach rests on its laws. These property
// tests pin them down on random datasets.

func randomGalois(r *rand.Rand) *Dataset {
	nRows := 2 + r.Intn(9)
	nItems := 2 + r.Intn(10)
	d := &Dataset{ClassNames: []string{"C", "notC"}}
	for i := 0; i < nItems; i++ {
		d.Items = append(d.Items, Item{Gene: i, GeneName: "g"})
	}
	for row := 0; row < nRows; row++ {
		var items []int
		for i := 0; i < nItems; i++ {
			if r.Intn(2) == 0 {
				items = append(items, i)
			}
		}
		d.Rows = append(d.Rows, items)
		d.Labels = append(d.Labels, Label(r.Intn(2)))
	}
	return d
}

func randomRowSet(r *rand.Rand, n int) *bitset.Set {
	s := bitset.New(n)
	for i := 0; i < n; i++ {
		if r.Intn(2) == 0 {
			s.Add(i)
		}
	}
	return s
}

func TestGaloisExtensivity(t *testing.T) {
	// X ⊆ R(I(X)) and A ⊆ I(R(A)).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomGalois(r)
		x := randomRowSet(r, d.NumRows())
		if !d.SupportSet(d.CommonItems(x)).ContainsAll(x) {
			return false
		}
		var a []int
		for i := 0; i < d.NumItems(); i++ {
			if r.Intn(3) == 0 {
				a = append(a, i)
			}
		}
		closure := d.CommonItems(d.SupportSet(a))
		set := map[int]bool{}
		for _, it := range closure {
			set[it] = true
		}
		for _, it := range a {
			if !set[it] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGaloisIdempotence(t *testing.T) {
	// I(R(I(X))) = I(X): closures are stable.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomGalois(r)
		x := randomRowSet(r, d.NumRows())
		once := d.CommonItems(x)
		twice := d.CommonItems(d.SupportSet(once))
		return reflect.DeepEqual(once, twice)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGaloisAntitone(t *testing.T) {
	// X ⊆ Y implies I(Y) ⊆ I(X).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomGalois(r)
		y := randomRowSet(r, d.NumRows())
		x := y.Clone()
		// Remove a random element to get X ⊂ Y (when possible).
		if idx := y.Indices(); len(idx) > 0 {
			x.Remove(idx[r.Intn(len(idx))])
		}
		iy := map[int]bool{}
		for _, it := range d.CommonItems(y) {
			iy[it] = true
		}
		ix := map[int]bool{}
		for _, it := range d.CommonItems(x) {
			ix[it] = true
		}
		for it := range iy {
			if !ix[it] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGaloisSupportAntitone(t *testing.T) {
	// A ⊆ B implies R(B) ⊆ R(A).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomGalois(r)
		var b []int
		for i := 0; i < d.NumItems(); i++ {
			if r.Intn(2) == 0 {
				b = append(b, i)
			}
		}
		if len(b) == 0 {
			return true
		}
		a := b[:len(b)-1]
		return d.SupportSet(a).ContainsAll(d.SupportSet(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLemma31UpperBound(t *testing.T) {
	// Lemma 3.1: I(X) -> C is the upper bound of the rule group whose
	// antecedent support set is R(I(X)): i.e., I(X) is closed.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomGalois(r)
		x := randomRowSet(r, d.NumRows())
		items := d.CommonItems(x)
		if len(items) == 0 {
			return true
		}
		sup := d.SupportSet(items)
		// No strict superset of items shares the support set.
		for i := 0; i < d.NumItems(); i++ {
			in := false
			for _, it := range items {
				if it == i {
					in = true
					break
				}
			}
			if in {
				continue
			}
			if d.ItemRows(i).ContainsAll(sup) {
				return false // i should have been in the closure
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
