package dataset

// RunningExample builds the 5-row dataset of the paper's Figure 1(a).
// Items a..p are mapped to dense ids; class "C" is label 0, "notC" is
// label 1. It is the golden fixture for miner tests across packages.
//
//	r1: a b c d e  -> C
//	r2: a b c o p  -> C
//	r3: c d e f g  -> C
//	r4: c d e f g  -> notC
//	r5: e f g h o  -> notC
//
// This reading is cross-checked against the transposed table of Figure
// 1(b) and the worked examples: R({c,d,e}) = {r1,r3,r4}, top-1 group of
// r1/r2 is abc->C (conf 100%, sup 2), of r3 is cde->C (66.7%, 2), and of
// r4/r5 is efg->notC (66.7%, 2).
func RunningExample() (*Dataset, map[string]int) {
	names := []string{"a", "b", "c", "d", "e", "f", "g", "h", "o", "p"}
	idx := make(map[string]int, len(names))
	items := make([]Item, len(names))
	for i, n := range names {
		idx[n] = i
		items[i] = Item{Gene: i, GeneName: n, Lo: 0, Hi: 1}
	}
	row := func(names ...string) []int {
		r := make([]int, len(names))
		for i, n := range names {
			r[i] = idx[n]
		}
		return r
	}
	d := &Dataset{
		Items: items,
		Rows: [][]int{
			row("a", "b", "c", "d", "e"),
			row("a", "b", "c", "o", "p"),
			row("c", "d", "e", "f", "g"),
			row("c", "d", "e", "f", "g"),
			row("e", "f", "g", "h", "o"),
		},
		Labels:     []Label{0, 0, 0, 1, 1},
		ClassNames: []string{"C", "notC"},
	}
	return d, idx
}
