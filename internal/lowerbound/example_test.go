package lowerbound_test

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/lowerbound"
	"repro/internal/rules"
)

// ExampleFind reproduces the paper's Example 2.2: the rule group with
// upper bound abc -> C has the two lower bounds a -> C and b -> C.
func ExampleFind() {
	d, idx := dataset.RunningExample()
	sup := d.SupportSet([]int{idx["a"]})
	g := &rules.Group{
		Antecedent: d.CommonItems(sup), // closure of {a} = {a, b, c}
		Class:      0,
		Support:    2,
		Confidence: 1,
		Rows:       sup,
	}
	for _, lb := range lowerbound.Find(d, g, lowerbound.Config{NL: 5}) {
		fmt.Println(lb.Render(d))
	}
	// Output:
	// a[0,1) -> C (sup=2 conf=1.000)
	// b[0,1) -> C (sup=2 conf=1.000)
}
