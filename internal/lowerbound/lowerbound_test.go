package lowerbound

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/rules"
)

// groupFor builds the rule group whose antecedent is the closure of the
// given items.
func groupFor(d *dataset.Dataset, items []int, cls dataset.Label) *rules.Group {
	sup := d.SupportSet(items)
	ant := d.CommonItems(sup)
	xp := 0
	sup.ForEach(func(r int) bool {
		if d.Labels[r] == cls {
			xp++
		}
		return true
	})
	return &rules.Group{
		Antecedent: ant,
		Class:      cls,
		Support:    xp,
		Confidence: float64(xp) / float64(sup.Count()),
		Rows:       sup,
	}
}

// bruteForceLowerBounds enumerates all minimal subsets A' of g.Antecedent
// with R(A') == g.Rows.
func bruteForceLowerBounds(d *dataset.Dataset, g *rules.Group) [][]int {
	n := len(g.Antecedent)
	if n > 20 {
		panic("too many items for brute force")
	}
	var members []int // masks with R(A') == R
	for mask := 0; mask < 1<<n; mask++ {
		var items []int
		for b := 0; b < n; b++ {
			if mask&(1<<b) != 0 {
				items = append(items, g.Antecedent[b])
			}
		}
		if d.SupportSet(items).Equal(g.Rows) {
			members = append(members, mask)
		}
	}
	var out [][]int
	for _, m := range members {
		minimal := true
		for _, m2 := range members {
			if m2 != m && m2&m == m2 {
				minimal = false
				break
			}
		}
		if minimal {
			var items []int
			for b := 0; b < n; b++ {
				if m&(1<<b) != 0 {
					items = append(items, g.Antecedent[b])
				}
			}
			out = append(out, items)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) < len(out[j])
		}
		return sliceLess(out[i], out[j])
	})
	return out
}

func sliceLess(a, b []int) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

func TestExample22LowerBounds(t *testing.T) {
	// Example 2.2: group with upper bound abc -> C has lower bounds
	// a -> C and b -> C.
	d, idx := dataset.RunningExample()
	g := groupFor(d, []int{idx["a"]}, 0)
	if len(g.Antecedent) != 3 {
		t.Fatalf("closure of {a} should be abc, got %v", g.Antecedent)
	}
	lbs := Find(d, g, Config{NL: 10})
	if len(lbs) != 2 {
		t.Fatalf("found %d lower bounds, want 2 (a, b)", len(lbs))
	}
	var got []int
	for _, lb := range lbs {
		if len(lb.Antecedent) != 1 {
			t.Fatalf("lower bound %v should be a single item", lb.Antecedent)
		}
		got = append(got, lb.Antecedent[0])
	}
	sort.Ints(got)
	want := []int{idx["a"], idx["b"]}
	sort.Ints(want)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("lower bounds = %v, want %v", got, want)
	}
}

func TestLowerBoundRuleCarriesGroupStats(t *testing.T) {
	d, idx := dataset.RunningExample()
	g := groupFor(d, []int{idx["a"]}, 0)
	lbs := Find(d, g, Config{NL: 1})
	if len(lbs) != 1 {
		t.Fatal("want one lower bound")
	}
	if lbs[0].Support != g.Support || lbs[0].Confidence != g.Confidence || lbs[0].Class != g.Class {
		t.Fatalf("lower bound stats %+v do not match group", lbs[0])
	}
}

func TestNLTruncates(t *testing.T) {
	d, idx := dataset.RunningExample()
	g := groupFor(d, []int{idx["a"]}, 0)
	if lbs := Find(d, g, Config{NL: 1}); len(lbs) != 1 {
		t.Fatalf("NL=1 returned %d bounds", len(lbs))
	}
	if lbs := Find(d, g, Config{NL: 0}); lbs != nil {
		t.Fatal("NL=0 should return nil")
	}
}

func TestGroupCoveringAllRows(t *testing.T) {
	// A group whose support set is every row has only the empty lower
	// bound.
	d := &dataset.Dataset{
		Items:      []dataset.Item{{GeneName: "x"}},
		Rows:       [][]int{{0}, {0}},
		Labels:     []dataset.Label{0, 1},
		ClassNames: []string{"C", "notC"},
	}
	g := groupFor(d, []int{0}, 0)
	lbs := Find(d, g, Config{NL: 3})
	if len(lbs) != 1 || len(lbs[0].Antecedent) != 0 {
		t.Fatalf("want single empty lower bound, got %v", lbs)
	}
}

func TestMaxLenCapsSearch(t *testing.T) {
	d, idx := dataset.RunningExample()
	// Group cde -> C (R = {r1, r3, r4}); its lower bounds are d (R(d) =
	// {r1,r3,r4}) — single item.
	g := groupFor(d, []int{idx["c"], idx["d"]}, 0)
	lbs := Find(d, g, Config{NL: 5, MaxLen: 1})
	for _, lb := range lbs {
		if len(lb.Antecedent) > 1 {
			t.Fatalf("MaxLen=1 produced %v", lb.Antecedent)
		}
	}
}

func TestQuickMatchesBruteForce(t *testing.T) {
	// Find with a large NL must return exactly the set of minimal lower
	// bounds (order may differ by ranking).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDataset(r)
		// Pick a random row subset's closure as the group.
		nr := d.NumRows()
		seedRow := r.Intn(nr)
		g := groupFor(d, d.Rows[seedRow], 0)
		if len(g.Antecedent) == 0 || len(g.Antecedent) > 12 {
			return true // skip degenerate/expensive cases
		}
		want := bruteForceLowerBounds(d, g)
		got := Find(d, g, Config{NL: 1 << 20})
		if len(got) != len(want) {
			return false
		}
		canon := func(items [][]int) []string {
			out := make([]string, len(items))
			for i, s := range items {
				srt := append([]int(nil), s...)
				sort.Ints(srt)
				key := ""
				for _, x := range srt {
					key += string(rune('A' + x))
				}
				out[i] = key
			}
			sort.Strings(out)
			return out
		}
		gotSets := make([][]int, len(got))
		for i, lb := range got {
			gotSets[i] = lb.Antecedent
		}
		return reflect.DeepEqual(canon(gotSets), canon(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickEveryResultIsValidLowerBound(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDataset(r)
		g := groupFor(d, d.Rows[r.Intn(d.NumRows())], 0)
		if len(g.Antecedent) == 0 {
			return true
		}
		for _, lb := range Find(d, g, Config{NL: 20}) {
			// Condition (1): subset of the upper bound.
			for _, it := range lb.Antecedent {
				found := false
				for _, u := range g.Antecedent {
					if u == it {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
			// Condition (2): same support set.
			if !d.SupportSet(lb.Antecedent).Equal(g.Rows) {
				return false
			}
			// Condition (3): minimal — removing any item grows support.
			for drop := range lb.Antecedent {
				sub := append([]int(nil), lb.Antecedent[:drop]...)
				sub = append(sub, lb.Antecedent[drop+1:]...)
				if d.SupportSet(sub).Equal(g.Rows) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestShortestFirst(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDataset(r)
		g := groupFor(d, d.Rows[r.Intn(d.NumRows())], 0)
		lbs := Find(d, g, Config{NL: 50})
		for i := 1; i < len(lbs); i++ {
			if len(lbs[i].Antecedent) < len(lbs[i-1].Antecedent) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func randomDataset(r *rand.Rand) *dataset.Dataset {
	nRows := 3 + r.Intn(6)
	nItems := 3 + r.Intn(8)
	d := &dataset.Dataset{ClassNames: []string{"C", "notC"}}
	for i := 0; i < nItems; i++ {
		d.Items = append(d.Items, dataset.Item{Gene: i, GeneName: "g"})
	}
	for row := 0; row < nRows; row++ {
		var items []int
		for i := 0; i < nItems; i++ {
			if r.Intn(3) != 0 {
				items = append(items, i)
			}
		}
		if len(items) == 0 {
			items = []int{0}
		}
		d.Rows = append(d.Rows, items)
		d.Labels = append(d.Labels, dataset.Label(r.Intn(2)))
	}
	d.Labels[0] = 0
	return d
}

func TestItemScoreOverride(t *testing.T) {
	// With custom scores, the first-ranked single-item bound should be
	// the highest-scored one when several single-item bounds exist.
	d, idx := dataset.RunningExample()
	g := groupFor(d, []int{idx["a"]}, 0) // lower bounds: a, b
	scores := make([]float64, d.NumItems())
	scores[idx["b"]] = 10 // make b the top-ranked item
	lbs := Find(d, g, Config{NL: 1, ItemScore: scores})
	if len(lbs) != 1 || lbs[0].Antecedent[0] != idx["b"] {
		t.Fatalf("expected b first with boosted score, got %v", lbs)
	}
}

func TestBudgetHalts(t *testing.T) {
	d, idx := dataset.RunningExample()
	g := groupFor(d, []int{idx["a"]}, 0)
	// a and b share a kill set, so the single budgeted candidate (their
	// equivalence class) may expand to both; nothing beyond that class
	// may be examined.
	lbs := Find(d, g, Config{NL: 10, MaxCandidates: 1})
	if len(lbs) > 2 {
		t.Fatalf("budget 1 examined too much: %d results", len(lbs))
	}
}

func TestFindAllMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		d := randomDataset(r)
		var groups []*rules.Group
		for row := 0; row < d.NumRows(); row++ {
			groups = append(groups, groupFor(d, d.Rows[row], 0))
		}
		cfg := Config{NL: 10}
		got := FindAll(d, groups, cfg)
		if len(got) != len(groups) {
			t.Fatalf("trial %d: %d results for %d groups", trial, len(got), len(groups))
		}
		for i, g := range groups {
			want := Find(d, g, cfg)
			if len(got[i]) != len(want) {
				t.Fatalf("trial %d group %d: %d vs %d lower bounds", trial, i, len(got[i]), len(want))
			}
			for j := range want {
				if !reflect.DeepEqual(got[i][j].Antecedent, want[j].Antecedent) {
					t.Fatalf("trial %d group %d rule %d differs", trial, i, j)
				}
			}
		}
	}
}

func TestFindAllEmpty(t *testing.T) {
	d, _ := dataset.RunningExample()
	if out := FindAll(d, nil, Config{NL: 1}); len(out) != 0 {
		t.Fatal("no groups should give no results")
	}
}
