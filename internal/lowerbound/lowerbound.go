// Package lowerbound implements FindLB (Figure 5): breadth-first search
// for the nl shortest lower-bound rules of a rule group, with items
// ranked by the discriminant power of their genes and containment tests
// done on row bitmaps.
//
// A lower bound of group G (upper bound A, support set R) is a minimal
// A' ⊆ A with R(A') = R (Lemma 5.1). Equivalently — because every row
// in R contains all of A — A' must "kill" every row outside R: each
// outside row must miss at least one item of A', and no item of A' may
// be redundant. Lower bounds are therefore exactly the minimal hitting
// sets of the outside rows' complements, which is how the search is
// implemented.
package lowerbound

import (
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/bitset"
	"repro/internal/dataset"
	"repro/internal/rules"
)

// Config controls the search.
type Config struct {
	// NL is the number of lower bounds to return (FindLB's nl).
	NL int
	// MaxLen caps candidate antecedent length; 0 means no cap. The
	// paper observes real lower bounds have 1-5 items.
	MaxLen int
	// MaxCandidates bounds the number of candidates examined, so
	// adversarial groups cannot blow up classifier construction;
	// 0 means the default of 1<<20.
	MaxCandidates int
	// ItemScore ranks items for the breadth-first order (higher =
	// examined earlier, Step 1 of FindLB). When nil, items are scored by
	// the information gain of their presence against the class labels.
	ItemScore []float64
}

// Find returns up to cfg.NL shortest lower-bound rules of group g over
// dataset d, most discriminant item combinations first.
func Find(d *dataset.Dataset, g *rules.Group, cfg Config) []*rules.Rule {
	if cfg.NL <= 0 {
		return nil
	}
	budget := cfg.MaxCandidates
	if budget <= 0 {
		budget = 1 << 20
	}

	// Outside rows: rows not in the group's support set.
	outside := g.Rows.Clone()
	flip := bitset.New(d.NumRows())
	flip.Fill()
	outside = flip.Difference(outside)

	mkRule := func(ant []int) *rules.Rule {
		sorted := append([]int(nil), ant...)
		sort.Ints(sorted)
		return &rules.Rule{
			Antecedent: sorted,
			Class:      g.Class,
			Support:    g.Support,
			Confidence: g.Confidence,
		}
	}

	// Degenerate group covering every row: the empty rule is its only
	// lower bound.
	if outside.IsEmpty() {
		return []*rules.Rule{mkRule(nil)}
	}

	// Step 1: rank the upper bound's items by descending score.
	ranked := append([]int(nil), g.Antecedent...)
	score := cfg.ItemScore
	if score == nil {
		score = DefaultItemScores(d)
	}
	sort.SliceStable(ranked, func(a, b int) bool { return score[ranked[a]] > score[ranked[b]] })

	// Group items by identical kill sets. Correlated gene intervals
	// share kill sets, and any two same-kill items are interchangeable
	// in every cover, so the search runs over one representative per
	// class and substitutions are expanded afterwards. This is what
	// keeps FindLB tractable on block-correlated expression data.
	type itemClass struct {
		items []int // rank order within the class
		kill  *bitset.Set
	}
	var classes []itemClass
	classOf := map[string]int{}
	for _, it := range ranked {
		k := outside.Difference(d.ItemRows(it))
		if k.IsEmpty() {
			continue // kills nothing: never part of a minimal cover
		}
		key := k.Key()
		ci, ok := classOf[key]
		if !ok {
			ci = len(classes)
			classOf[key] = ci
			classes = append(classes, itemClass{kill: k})
		}
		classes[ci].items = append(classes[ci].items, it)
	}
	kills := make([]*bitset.Set, len(classes))
	for j := range classes {
		kills[j] = classes[j].kill
	}

	// emit expands a minimal representative cover into concrete lower
	// bounds by substituting class members in rank order, until nl rules
	// are produced. It reports whether the nl quota is filled.
	var found []*rules.Rule
	emit := func(idx []int) bool {
		choice := make([]int, len(idx))
		var rec func(pos int) bool
		rec = func(pos int) bool {
			if pos == len(idx) {
				ant := make([]int, len(idx))
				for i, j := range idx {
					ant[i] = classes[j].items[choice[i]]
				}
				found = append(found, mkRule(ant))
				return len(found) >= cfg.NL
			}
			for c := range classes[idx[pos]].items {
				choice[pos] = c
				if rec(pos + 1) {
					return true
				}
			}
			return false
		}
		return rec(0)
	}

	// Step 2: BFS over ranked class combinations by increasing size. A
	// candidate is a lower bound iff its kill union covers all outside
	// rows and removing any single class breaks coverage (minimality).
	type cand struct {
		idx   []int       // indices into classes
		cover *bitset.Set // union of kills
	}
	level := make([]cand, 0, len(classes))
	for j := range classes {
		level = append(level, cand{idx: []int{j}, cover: kills[j]})
	}

	examined := 0
	size := 1
	for len(level) > 0 && len(found) < cfg.NL {
		if cfg.MaxLen > 0 && size > cfg.MaxLen {
			break
		}
		var next []cand
		for _, c := range level {
			examined++
			if examined > budget {
				return found
			}
			if c.cover.ContainsAll(outside) {
				if isMinimal(c.idx, kills, outside) {
					if emit(c.idx) {
						return found
					}
				}
				continue // supersets of a cover are never minimal
			}
			last := c.idx[len(c.idx)-1]
			for j := last + 1; j < len(classes); j++ {
				// If kills[j] ⊆ cover(c), class j stays redundant in every
				// extension of c — no minimal cover there. If kills[j] ⊇
				// cover(c), every class of c becomes redundant once j is
				// added; the minimal covers through j are reached from
				// shorter prefixes containing j instead. Both prune.
				if c.cover.ContainsAll(kills[j]) || kills[j].ContainsAll(c.cover) {
					continue
				}
				next = append(next, cand{
					idx:   append(append([]int(nil), c.idx...), j),
					cover: c.cover.Union(kills[j]),
				})
			}
		}
		level = next
		size++
	}
	return found
}

// isMinimal reports whether removing any single item breaks coverage.
func isMinimal(idx []int, kills []*bitset.Set, outside *bitset.Set) bool {
	if len(idx) == 1 {
		return true
	}
	for drop := range idx {
		cover := bitset.New(outside.Len())
		for i, j := range idx {
			if i == drop {
				continue
			}
			cover.UnionWith(kills[j])
		}
		if cover.ContainsAll(outside) {
			return false
		}
	}
	return true
}

// DefaultItemScores computes per-item information gain of presence
// versus class — the discrete analogue of the paper's gene entropy
// score, used when the caller does not supply Config.ItemScore. Callers
// issuing many Find calls on one dataset should compute this once and
// pass it explicitly; it costs O(items × rows).
func DefaultItemScores(d *dataset.Dataset) []float64 {
	scores := make([]float64, d.NumItems())
	n := d.NumRows()
	classCounts := make([]int, d.NumClasses())
	for _, l := range d.Labels {
		classCounts[int(l)]++
	}
	baseH := entropy(classCounts)
	for i := 0; i < d.NumItems(); i++ {
		present := make([]int, d.NumClasses())
		d.ItemRows(i).ForEach(func(r int) bool {
			present[int(d.Labels[r])]++
			return true
		})
		absent := make([]int, d.NumClasses())
		pn := 0
		for c := range present {
			absent[c] = classCounts[c] - present[c]
			pn += present[c]
		}
		if pn == 0 || pn == n {
			scores[i] = 0
			continue
		}
		h := float64(pn)/float64(n)*entropy(present) +
			float64(n-pn)/float64(n)*entropy(absent)
		scores[i] = baseH - h
	}
	return scores
}

func entropy(counts []int) float64 {
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	h := 0.0
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / float64(total)
		h -= p * math.Log2(p)
	}
	return h
}

// FindAll runs Find for every group concurrently (bounded by
// GOMAXPROCS workers) and returns results in group order, so callers
// stay deterministic. Groups share the dataset read-only.
func FindAll(d *dataset.Dataset, groups []*rules.Group, cfg Config) [][]*rules.Rule {
	out := make([][]*rules.Rule, len(groups))
	if len(groups) == 0 {
		return out
	}
	// Warm the dataset's inverted index and the default scores before
	// fan-out: both are lazily built and must not race.
	if d.NumItems() > 0 {
		d.ItemRows(0)
	}
	if cfg.ItemScore == nil {
		cfg.ItemScore = DefaultItemScores(d)
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(groups) {
		workers = len(groups)
	}
	var next int64 = -1
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(groups) {
					return
				}
				out[i] = Find(d, groups[i], cfg)
			}
		}()
	}
	wg.Wait()
	return out
}
