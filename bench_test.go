// Package repro's top-level benchmarks regenerate every table and
// figure of the paper's evaluation section as Go benchmarks, one per
// artifact, over gene-scaled synthetic profiles (the benchrunner CLI
// runs the same experiments at paper scale):
//
//	BenchmarkTable1Discretization — Table 1
//	BenchmarkFig6MineTopkRGS / BenchmarkFig6Baselines — Figure 6(a-d)
//	BenchmarkFig6eVaryK — Figure 6(e)
//	BenchmarkTable2Classifiers — Table 2
//	BenchmarkFig7VaryNL — Figure 7
//	BenchmarkFig8GeneRanks — Figure 8
//	BenchmarkDefaultClassStats / BenchmarkMinsupSweep — §6.2 analyses
//	BenchmarkAblation* — design-choice ablations from DESIGN.md
//	BenchmarkParallelSpeedup — parallel engine scaling on PC
package repro

import (
	"context"
	"fmt"
	"io"
	"testing"

	"repro/internal/bench"
	"repro/internal/charm"
	"repro/internal/closet"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/discretize"
	"repro/internal/eval"
	"repro/internal/farmer"
	"repro/internal/synth"
)

// benchScale shrinks gene counts so the full -bench=. sweep stays in
// the minutes range; relative orderings are preserved.
const benchScale = 30

// prep caches discretized datasets per profile across benchmarks.
var prepCache = map[string]*dataset.Dataset{}

func prepDataset(b *testing.B, p synth.Profile) *dataset.Dataset {
	b.Helper()
	if d, ok := prepCache[p.Name]; ok {
		return d
	}
	train, _, err := synth.Generate(p)
	if err != nil {
		b.Fatal(err)
	}
	dz, err := discretize.FitMatrix(train)
	if err != nil {
		b.Fatal(err)
	}
	d, err := dz.Transform(train)
	if err != nil {
		b.Fatal(err)
	}
	prepCache[p.Name] = d
	return d
}

func scaledProfiles() []synth.Profile {
	ps := synth.Profiles()
	for i := range ps {
		ps[i] = synth.Scaled(ps[i], benchScale)
	}
	return ps
}

func minsupOf(d *dataset.Dataset, frac float64) int {
	n := d.ClassCount(0)
	ms := int(frac*float64(n)) + 1
	if ms < 1 {
		ms = 1
	}
	return ms
}

// BenchmarkTable1Discretization measures the Table 1 preprocessing:
// entropy-MDL discretization with feature selection per dataset.
func BenchmarkTable1Discretization(b *testing.B) {
	for _, p := range scaledProfiles() {
		train, _, err := synth.Generate(p)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(p.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := discretize.FitMatrix(train); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig6MineTopkRGS measures MineTopkRGS per dataset at the
// paper's two k settings (Figure 6 a-d, TopkRGS series).
func BenchmarkFig6MineTopkRGS(b *testing.B) {
	for _, p := range scaledProfiles() {
		d := prepDataset(b, p)
		ms := minsupOf(d, 0.9)
		for _, k := range []int{1, 100} {
			b.Run(fmt.Sprintf("%s/k=%d", p.Name, k), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := core.Mine(d, 0, core.DefaultConfig(ms, k)); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig6Baselines measures the baseline miners at the same
// support level (Figure 6 a-d, FARMER / FARMER+prefix / CHARM / CLOSET+
// series). Runs are node-budgeted, as in the paper's DNF entries.
func BenchmarkFig6Baselines(b *testing.B) {
	const budget = 2_000_000
	for _, p := range scaledProfiles() {
		d := prepDataset(b, p)
		ms := minsupOf(d, 0.9)
		for _, cfg := range []struct {
			name   string
			engine farmer.Engine
		}{
			{"FARMER", farmer.EngineNaive},
			{"FARMER+prefix", farmer.EnginePrefix},
			{"FARMER+bitset", farmer.EngineBitset},
		} {
			b.Run(p.Name+"/"+cfg.name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := farmer.Mine(d, 0, farmer.Config{
						Minsup: ms, Minconf: 0.9, Engine: cfg.engine, MaxNodes: budget,
					}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
		colMS := ms
		b.Run(p.Name+"/CHARM", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := charm.Mine(d, charm.Config{Minsup: colMS, MaxNodes: budget}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(p.Name+"/CLOSET+", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := closet.Mine(d, closet.Config{Minsup: colMS, MaxNodes: budget}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig6eVaryK measures MineTopkRGS as k grows (Figure 6e) on
// the ALL and PC profiles.
func BenchmarkFig6eVaryK(b *testing.B) {
	for _, p := range scaledProfiles() {
		if n := p.Name; n != "ALL/30" && n != "PC/30" {
			continue
		}
		d := prepDataset(b, p)
		ms := minsupOf(d, 0.8)
		for _, k := range []int{1, 20, 40, 60, 80, 100} {
			b.Run(fmt.Sprintf("%s/k=%d", p.Name, k), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := core.Mine(d, 0, core.DefaultConfig(ms, k)); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkTable2Classifiers measures full classifier training and
// evaluation per dataset (Table 2).
func BenchmarkTable2Classifiers(b *testing.B) {
	for _, p := range scaledProfiles() {
		train, test, err := synth.Generate(p)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(p.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eval.Evaluate(train, test, eval.Options{
					MinsupFrac: 0.85, K: 5, NL: 10, BagRounds: 5, BoostRounds: 5,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig7VaryNL measures RCBT training as nl grows (Figure 7).
func BenchmarkFig7VaryNL(b *testing.B) {
	for _, nl := range []int{1, 10, 20, 30} {
		b.Run(fmt.Sprintf("nl=%d", nl), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := bench.Fig7(io.Discard, benchScale, []int{nl}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig8GeneRanks measures the Figure 8 gene-participation
// analysis on the PC profile.
func BenchmarkFig8GeneRanks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig8(context.Background(), io.Discard, benchScale, 10, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelSpeedup measures the parallel row-enumeration engine
// across worker counts on the PC profile (the paper's hardest dataset);
// the sub-benchmark ratio workers=1 / workers=N is the speedup. Output
// is identical at every worker count, so only wall time varies.
func BenchmarkParallelSpeedup(b *testing.B) {
	p := scaledProfiles()[3] // PC
	d := prepDataset(b, p)
	ms := minsupOf(d, 0.7)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			cfg := core.DefaultConfig(ms, 10)
			cfg.Workers = workers
			for i := 0; i < b.N; i++ {
				if _, err := core.MineContext(context.Background(), d, 0, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDefaultClassStats measures the §6.2 default-class analysis.
func BenchmarkDefaultClassStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.DefaultClassStats(io.Discard, benchScale, eval.Options{
			MinsupFrac: 0.85, K: 5, NL: 10,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMinsupSweep measures the §6.2 minsup sensitivity sweep.
func BenchmarkMinsupSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.MinsupSweep(io.Discard, benchScale, []float64{0.8, 0.85}); err != nil {
			b.Fatal(err)
		}
	}
}

// ablationBench runs MineTopkRGS with one optimization toggled.
func ablationBench(b *testing.B, mod func(*core.Config)) {
	for _, p := range scaledProfiles() {
		d := prepDataset(b, p)
		ms := minsupOf(d, 0.9)
		for _, on := range []bool{true, false} {
			name := p.Name + "/on"
			if !on {
				name = p.Name + "/off"
			}
			b.Run(name, func(b *testing.B) {
				cfg := core.DefaultConfig(ms, 10)
				cfg.MaxNodes = 3_000_000
				if !on {
					mod(&cfg)
				}
				for i := 0; i < b.N; i++ {
					if _, err := core.Mine(d, 0, cfg); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkAblationTopKPruning toggles the dynamic-confidence pruning.
func BenchmarkAblationTopKPruning(b *testing.B) {
	ablationBench(b, func(c *core.Config) { c.TopKPruning = false })
}

// BenchmarkAblationBackwardPruning toggles the closedness check.
func BenchmarkAblationBackwardPruning(b *testing.B) {
	ablationBench(b, func(c *core.Config) { c.BackwardPruning = false })
}

// BenchmarkAblationSingleItemInit toggles single-item seeding.
func BenchmarkAblationSingleItemInit(b *testing.B) {
	ablationBench(b, func(c *core.Config) { c.SeedInit = false })
}

// BenchmarkAblationRowOrder toggles ascending-item-count row ordering.
func BenchmarkAblationRowOrder(b *testing.B) {
	ablationBench(b, func(c *core.Config) { c.SortRowsByItemCount = false })
}

// BenchmarkAblationPrefixTree compares the three FARMER table engines
// (the paper's FARMER vs FARMER+prefix representation ablation).
func BenchmarkAblationPrefixTree(b *testing.B) {
	for _, p := range scaledProfiles() {
		d := prepDataset(b, p)
		ms := minsupOf(d, 0.9)
		for _, eng := range []farmer.Engine{farmer.EngineNaive, farmer.EnginePrefix, farmer.EngineBitset} {
			b.Run(p.Name+"/"+eng.String(), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := farmer.Mine(d, 0, farmer.Config{
						Minsup: ms, Minconf: 0.9, Engine: eng, MaxNodes: 2_000_000,
					}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
