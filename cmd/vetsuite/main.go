// Command vetsuite runs the repo-specific static-analysis suite
// (internal/analysis) over the whole module: bitset clone-before-mutate
// discipline, rules.CompareConf float-comparison policy, panic and
// unchecked-error hygiene, and concurrency preparation checks.
//
// Usage:
//
//	vetsuite [-json] [-list] [-enable a,b] [-disable a,b] [-C dir] ./...
//
// Exit status is 0 when clean, 1 when findings were reported, 2 on load
// or usage errors.
package main

import (
	"os"

	"repro/internal/analysis"
)

func main() {
	os.Exit(analysis.Main(os.Stdout, os.Stderr, os.Args[1:]))
}
