// Command vetsuite runs the repo-specific static-analysis suite
// (internal/analysis) over the module: convention checks (bitset
// clone-before-mutate discipline, rules.CompareConf float-comparison
// policy, panic and unchecked-error hygiene, concurrency preparation)
// plus the contract-verification layer (vet:allocfree zero-escape
// proofs, engine.Visitor arena-aliasing, context threading, %w error
// wrapping and errors.Is sentinel matching, atomic-access consistency).
//
// Usage:
//
//	vetsuite [-json] [-list] [-enable a,b] [-disable a,b] [-pkg patterns] [-C dir] [patterns]
//
// Patterns (positional or via -pkg) select which packages report
// findings — ./... (default), ./dir/... for a subtree, ./dir or an
// import path for one package; the whole module is always loaded so
// cross-package facts stay complete, and a pattern matching nothing is
// an error. -list prints the analyzers; -json emits the
// vetsuite-findings/2 report CI archives and diffs against the
// checked-in baseline.
//
// Exit status is 0 when clean, 1 when findings were reported, 2 when
// the suite could not run (load or usage errors) — distinct so CI can
// tell dirty code from a broken checker.
package main

import (
	"os"

	"repro/internal/analysis"
)

func main() {
	os.Exit(analysis.Main(os.Stdout, os.Stderr, os.Args[1:]))
}
