// Command benchrunner regenerates the paper's tables and figures on the
// synthetic dataset profiles.
//
// Usage:
//
//	benchrunner -exp table1|fig6|fig6e|table2|fig7|fig8|defaultclass|minsupsweep|ablation|parallelspeedup|all [-scale N]
//
// -scale divides the profiles' gene counts (1 = paper scale; larger is
// faster). -workers sets the TopkRGS worker count for the mining
// experiments (default 1 = sequential, the paper's setting; 0 = all
// cores), -timeout bounds the whole run via context cancellation.
// Output goes to stdout in paper-style rows.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro/internal/bench"
	"repro/internal/eval"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1, fig6, fig6e, table2, fig7, fig8, defaultclass, minsupsweep, groupcount, topgenes, ablation, parallelspeedup, speedup, perf, refresh, all")
	scale := flag.Int("scale", 1, "gene-count divisor (1 = paper scale)")
	budget := flag.Int("budget", 3_000_000, "baseline node budget before DNF")
	topkBudget := flag.Int("topkbudget", 0, "optional MineTopkRGS node budget in fig6 (0 = unbounded)")
	noColumn := flag.Bool("nocolumn", false, "skip CHARM/CLOSET+ in fig6")
	datasets := flag.String("datasets", "", "comma-separated dataset filter for fig6 (e.g. ALL,LC)")
	minsups := flag.String("minsups", "", "comma-separated relative supports for fig6 (e.g. 0.95,0.9)")
	jsonOut := flag.String("json", "", "also write the experiment's structured results as JSON to this file")
	workers := flag.Int("workers", 1, "TopkRGS enumeration workers in mining experiments (0 = all cores)")
	timeout := flag.Duration("timeout", 0, "abort the run after this long (0 = no limit)")
	workerSweep := flag.String("workersweep", "", "comma-separated worker counts for parallelspeedup/speedup (e.g. 1,2,4,8)")
	topk := flag.Int("k", 0, "for -exp speedup: top-k list length per row (0 = experiment default)")
	assertSpeedup := flag.Float64("assert-speedup", 0, "for -exp speedup: fail unless the 4-worker topk run on the largest dataset reaches this speedup over sequential (skipped with a warning when the machine has fewer than 4 CPUs)")
	refreshChunks := flag.Int("refresh-chunks", 8, "for -exp refresh: number of append batches replayed")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the whole run to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			_ = f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchrunner: -memprofile: %v\n", err)
				return
			}
			runtime.GC() // up-to-date heap statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "benchrunner: -memprofile: %v\n", err)
			}
			_ = f.Close()
		}()
	}
	s := bench.Scale(*scale)
	w := os.Stdout
	writeJSON := func(v any) error {
		if *jsonOut == "" {
			return nil
		}
		f, err := os.Create(*jsonOut)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(v); err != nil {
			_ = f.Close() // the Encode failure is the error to report
			return err
		}
		return f.Close()
	}
	run := func(name string, fn func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	run("table1", func() error {
		rows, err := bench.Table1(w, s)
		if err != nil {
			return err
		}
		return writeJSON(rows)
	})
	run("fig6", func() error {
		cfg := bench.DefaultFig6Config()
		cfg.Scale = s
		cfg.BaselineBudget = *budget
		cfg.TopkBudget = *topkBudget
		cfg.IncludeColumnMiners = !*noColumn
		cfg.Workers = *workers
		if *datasets != "" {
			for _, d := range strings.Split(*datasets, ",") {
				name := strings.TrimSpace(d)
				if *scale > 1 {
					name = fmt.Sprintf("%s/%d", name, *scale)
				}
				cfg.Datasets = append(cfg.Datasets, name)
			}
		}
		if *minsups != "" {
			cfg.Minsups = nil
			for _, m := range strings.Split(*minsups, ",") {
				v, err := strconv.ParseFloat(strings.TrimSpace(m), 64)
				if err != nil {
					return fmt.Errorf("bad -minsups entry %q: %w", m, err)
				}
				cfg.Minsups = append(cfg.Minsups, v)
			}
		}
		pts, err := bench.Fig6(ctx, w, cfg)
		if err != nil {
			return err
		}
		bench.ChartFig6(w, pts)
		return writeJSON(pts)
	})
	run("fig6e", func() error {
		_, err := bench.Fig6e(ctx, w, s, 0.8, nil, *workers)
		return err
	})
	run("table2", func() error {
		results, err := bench.Table2(w, s, eval.Options{})
		if err != nil {
			return err
		}
		return writeJSON(results)
	})
	run("fig7", func() error {
		pts, err := bench.Fig7(w, s, nil)
		if err != nil {
			return err
		}
		bench.ChartFig7(w, pts)
		return nil
	})
	run("fig8", func() error {
		res, err := bench.Fig8(ctx, w, s, 20, 20)
		if err != nil {
			return err
		}
		bench.ChartFig8(w, res)
		return nil
	})
	run("defaultclass", func() error {
		_, err := bench.DefaultClassStats(w, s, eval.Options{})
		return err
	})
	run("minsupsweep", func() error {
		return bench.MinsupSweep(w, s, nil)
	})
	run("topgenes", func() error {
		pts, err := bench.TopGenes(w, s, nil, 0)
		if err != nil {
			return err
		}
		return writeJSON(pts)
	})
	run("groupcount", func() error {
		pts, err := bench.GroupCount(ctx, w, s, nil, 0.9, *budget)
		if err != nil {
			return err
		}
		return writeJSON(pts)
	})
	run("ablation", func() error {
		if _, err := bench.AblationEngines(ctx, w, s, 0.85, 0.9, *budget); err != nil {
			return err
		}
		_, err := bench.AblationPruning(ctx, w, s, 0.8, 10, *budget)
		return err
	})
	run("perf", func() error {
		var workerList []int
		if *workerSweep != "" {
			for _, c := range strings.Split(*workerSweep, ",") {
				v, err := strconv.Atoi(strings.TrimSpace(c))
				if err != nil {
					return fmt.Errorf("bad -workersweep entry %q: %w", c, err)
				}
				workerList = append(workerList, v)
			}
		}
		pts, err := bench.PerfTrajectory(ctx, w, bench.PerfConfig{
			Scale: s, Budget: *budget, Workers: workerList,
		})
		if err != nil {
			return err
		}
		// The trajectory is archived across PRs: default the JSON path to
		// the checked-in name (it measures the fig6 PC profile).
		out := *jsonOut
		if out == "" {
			out = "BENCH_fig6.json"
		}
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(pts); err != nil {
			_ = f.Close()
			return err
		}
		return f.Close()
	})
	run("speedup", func() error {
		var counts []int
		if *workerSweep != "" {
			for _, c := range strings.Split(*workerSweep, ",") {
				v, err := strconv.Atoi(strings.TrimSpace(c))
				if err != nil {
					return fmt.Errorf("bad -workersweep entry %q: %w", c, err)
				}
				counts = append(counts, v)
			}
		}
		scfg := bench.SpeedupCurveConfig{Scale: s, Workers: counts, K: *topk}
		if *datasets != "" {
			scfg.Dataset = strings.TrimSpace(strings.Split(*datasets, ",")[0])
		}
		if *minsups != "" {
			v, err := strconv.ParseFloat(strings.TrimSpace(strings.Split(*minsups, ",")[0]), 64)
			if err != nil {
				return fmt.Errorf("bad -minsups entry: %w", err)
			}
			scfg.Minsup = v
		}
		pts, err := bench.SpeedupCurve(ctx, w, scfg)
		if err != nil {
			return err
		}
		// The curve is archived across PRs next to the fig6 trajectory.
		out := *jsonOut
		if out == "" {
			out = "BENCH_speedup.json"
		}
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(pts); err != nil {
			_ = f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		if *assertSpeedup > 0 {
			if runtime.NumCPU() < 4 {
				fmt.Fprintf(os.Stderr, "benchrunner: speedup: WARNING: only %d CPUs, skipping -assert-speedup %.2f (a 4-worker wall-clock gate needs >= 4 cores)\n",
					runtime.NumCPU(), *assertSpeedup)
				return nil
			}
			pt := bench.LargestAt(pts, 4)
			if pt == nil {
				return fmt.Errorf("speedup: no 4-worker point to assert on")
			}
			if pt.Speedup < *assertSpeedup {
				return fmt.Errorf("speedup gate failed: %s with 4 workers reached %.2fx, want >= %.2fx",
					pt.Dataset, pt.Speedup, *assertSpeedup)
			}
			fmt.Fprintf(os.Stdout, "speedup gate ok: %s with 4 workers reached %.2fx (>= %.2fx)\n",
				pt.Dataset, pt.Speedup, *assertSpeedup)
		}
		return nil
	})
	run("refresh", func() error {
		pts, err := bench.RefreshBench(ctx, w, *scale, *refreshChunks)
		if err != nil {
			return err
		}
		// The sweep is archived across PRs next to the serving points.
		out := *jsonOut
		if out == "" {
			out = "BENCH_refresh.json"
		}
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(pts); err != nil {
			_ = f.Close()
			return err
		}
		return f.Close()
	})
	run("parallelspeedup", func() error {
		var counts []int
		if *workerSweep != "" {
			for _, c := range strings.Split(*workerSweep, ",") {
				v, err := strconv.Atoi(strings.TrimSpace(c))
				if err != nil {
					return fmt.Errorf("bad -workersweep entry %q: %w", c, err)
				}
				counts = append(counts, v)
			}
		}
		pts, err := bench.ParallelSpeedup(ctx, w, s, 0.7, 10, counts)
		if err != nil {
			return err
		}
		return writeJSON(pts)
	})
}
