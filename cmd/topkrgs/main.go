// Command topkrgs mines the top-k covering rule groups of a discretized
// dataset file (see internal/dataset's WriteDataset format) or of a raw
// expression matrix (discretized on the fly).
//
// Usage:
//
//	topkrgs -in data.txt [-matrix] -class 0 -minsup 0.7 -k 10 [-workers N] [-timeout 30s] [-v]
//
// With -matrix, -in is parsed as a real-valued expression matrix and
// entropy-MDL discretization runs first. -minsup is relative to the
// consequent class size when < 1, absolute otherwise. -workers mines
// first-level enumeration subtrees on N goroutines (0 = all cores;
// output is identical to the sequential run), and -timeout aborts the
// whole mine with an error once exceeded.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/dataset"
	"repro/internal/discretize"
	"repro/internal/lowerbound"
	"repro/topkrgs"
)

func main() {
	in := flag.String("in", "", "input file (required)")
	isMatrix := flag.Bool("matrix", false, "input is a raw expression matrix")
	classIdx := flag.Int("class", 0, "consequent class index")
	minsup := flag.Float64("minsup", 0.7, "minimum support (relative if < 1, absolute otherwise)")
	k := flag.Int("k", 10, "covering rule groups per row")
	verbose := flag.Bool("v", false, "print per-row lists, not just the group union")
	nl := flag.Int("lb", 0, "also derive this many shortest lower-bound rules per group")
	workers := flag.Int("workers", 1, "enumeration workers (0 = all cores)")
	timeout := flag.Duration("timeout", 0, "abort mining after this long (0 = no limit)")
	flag.Parse()

	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	d, err := load(*in, *isMatrix)
	if err != nil {
		fail(err)
	}
	cls := dataset.Label(*classIdx)
	ms := int(*minsup)
	if *minsup < 1 {
		n := d.ClassCount(cls)
		ms = int(*minsup * float64(n))
		if float64(ms) < *minsup*float64(n) {
			ms++
		}
	}
	if ms < 1 {
		ms = 1
	}
	w := *workers
	if w == 0 {
		w = topkrgs.AllCores
	}
	res, err := topkrgs.Mine(context.Background(), d, topkrgs.MineOptions{
		Class:   cls,
		Minsup:  ms,
		K:       *k,
		Workers: w,
		Timeout: *timeout,
	})
	if err != nil {
		fail(err)
	}
	fmt.Printf("rows=%d items=%d frequentItems=%d class=%s minsup=%d k=%d\n",
		d.NumRows(), d.NumItems(), res.NumFrequentItems, d.ClassNames[cls], ms, *k)
	fmt.Printf("enumeration: nodes=%d backwardPruned=%d loosePruned=%d tightPruned=%d\n",
		res.Stats.Nodes, res.Stats.BackwardPruned, res.Stats.PrunedBeforeScan, res.Stats.PrunedAfterScan)
	fmt.Printf("distinct top-%d covering rule groups: %d\n", *k, len(res.Groups))
	var scores []float64
	if *nl > 0 {
		scores = lowerbound.DefaultItemScores(d)
	}
	for _, g := range res.Groups {
		fmt.Println("  " + g.Render(d))
		if *nl > 0 {
			lbs := lowerbound.Find(d, g, lowerbound.Config{
				NL: *nl, MaxLen: 5, MaxCandidates: 1 << 18, ItemScore: scores,
			})
			for _, lb := range lbs {
				fmt.Println("      lb: " + lb.Render(d))
			}
		}
	}
	if *verbose {
		for r := 0; r < d.NumRows(); r++ {
			gs, ok := res.PerRow[r]
			if !ok {
				continue
			}
			fmt.Printf("row %d (%s):\n", r, d.ClassNames[d.Labels[r]])
			for rank, g := range gs {
				fmt.Printf("  #%d %s\n", rank+1, g.Render(d))
			}
		}
	}
}

func load(path string, isMatrix bool) (*dataset.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close() // vetsuite:allow uncheckederr -- read-only file, nothing buffered to lose
	if !isMatrix {
		return dataset.ReadDataset(f)
	}
	m, err := dataset.ReadMatrix(f)
	if err != nil {
		return nil, err
	}
	dz, err := discretize.FitMatrix(m)
	if err != nil {
		return nil, err
	}
	return dz.Transform(m)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "topkrgs:", err)
	os.Exit(1)
}
