// Command loadgen drives the batch classification read path under
// load and archives the latency/throughput sweep as BENCH_serving.json.
//
// By default it spins up an in-process rcbtserved instance (a model
// trained on the PC synth profile, listening on 127.0.0.1:0), sweeps
// batch sizes in closed-loop mode (workers issuing requests back to
// back) and, with -qps, in open-loop mode (fixed arrival rate, so
// queueing delay lands in the measured tail), then writes the points
// to -out. Point -addr at a running server to load-test a real
// deployment instead.
//
// With -gate R the previous contents of -out are read first and the
// run fails when any (mode, batch) cell's p99 latency exceeds R times
// its archived value — the CI no-regression gate for the read path.
//
// Usage:
//
//	loadgen [-addr URL] [-scale N] [-batches 1,16,64,256]
//	        [-requests N] [-concurrency N] [-qps N]
//	        [-out BENCH_serving.json] [-gate 1.5]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	addr := flag.String("addr", "", "base URL of a running server (default: spin up an in-process one)")
	model := flag.String("model", "", "model name in request bodies (default: the server's single model)")
	scale := flag.Int("scale", 30, "gene-count divisor for the in-process fixture's PC profile")
	batches := flag.String("batches", "1,16,64,256", "comma-separated batch sizes to sweep")
	requests := flag.Int("requests", 200, "requests per (mode, batch) point")
	concurrency := flag.Int("concurrency", 4, "closed-loop worker count")
	qps := flag.Float64("qps", 0, "open-loop arrival rate per batch size (0 = closed-loop only)")
	out := flag.String("out", "BENCH_serving.json", "archive file for the sweep points")
	gate := flag.Float64("gate", 0, "fail when a cell's p99 exceeds this ratio of the archived baseline (0 = no gate)")
	timeout := flag.Duration("timeout", 10*time.Minute, "abort the whole run after this long")
	flag.Parse()

	if err := run(*addr, *model, *scale, *batches, *requests, *concurrency, *qps, *out, *gate, *timeout); err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(1)
	}
}

func run(addr, model string, scale int, batches string, requests, concurrency int, qps float64, out string, gate float64, timeout time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()

	cfg := bench.ServingConfig{
		Model:       model,
		Requests:    requests,
		Concurrency: concurrency,
		TargetQPS:   qps,
	}
	for _, b := range strings.Split(batches, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(b))
		if err != nil || v <= 0 {
			return fmt.Errorf("bad -batches entry %q", b)
		}
		cfg.Batches = append(cfg.Batches, v)
	}

	// Read the baseline before the sweep overwrites the archive.
	var baseline []bench.ServingPoint
	if gate > 0 {
		f, err := os.Open(out)
		if err != nil {
			if !os.IsNotExist(err) {
				return err
			}
			fmt.Fprintf(os.Stderr, "loadgen: no baseline at %s, gate records only\n", out)
		} else {
			err := json.NewDecoder(f).Decode(&baseline)
			_ = f.Close()
			if err != nil {
				return fmt.Errorf("baseline %s: %w", out, err)
			}
		}
	}

	if addr == "" {
		// In-process fixture: a real listener on a loopback port, so the
		// measured path includes the full TCP + JSON stack.
		fmt.Fprintf(os.Stderr, "loadgen: training in-process fixture (PC profile, scale %d)...\n", scale)
		srv, rows, err := bench.ServingFixture(scale)
		if err != nil {
			return err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		hs := &http.Server{Handler: srv}
		go hs.Serve(ln)  // vetsuite:allow uncheckederr -- Serve returns ErrServerClosed on the deferred Close
		defer hs.Close() // vetsuite:allow uncheckederr -- best-effort shutdown at exit
		cfg.BaseURL = "http://" + ln.Addr().String()
		cfg.Rows = rows
	} else {
		cfg.BaseURL = strings.TrimRight(addr, "/")
		// Against an external server the row pool must come from the
		// model's own universe; reuse the fixture's profile shape.
		_, rows, err := bench.ServingFixture(scale)
		if err != nil {
			return err
		}
		cfg.Rows = rows
	}

	pts, err := bench.ServingLoad(ctx, os.Stdout, cfg)
	if err != nil {
		return err
	}

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(pts); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "loadgen: wrote %d points to %s\n", len(pts), out)

	if gate > 0 && len(baseline) > 0 {
		return bench.ServingGate(os.Stdout, baseline, pts, gate)
	}
	return nil
}
