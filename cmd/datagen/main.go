// Command datagen writes synthetic gene expression datasets (matrix
// text format) for one of the paper's dataset profiles.
//
// Usage:
//
//	datagen -profile ALL|LC|OC|PC [-scale N] [-out dir]
//
// Two files are produced: <profile>_train.txt and <profile>_test.txt.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/dataset"
	"repro/internal/synth"
)

func main() {
	name := flag.String("profile", "ALL", "profile: ALL, LC, OC, or PC")
	scale := flag.Int("scale", 1, "gene-count divisor")
	out := flag.String("out", ".", "output directory")
	flag.Parse()

	var p synth.Profile
	switch strings.ToUpper(*name) {
	case "ALL":
		p = synth.ALL()
	case "LC":
		p = synth.LC()
	case "OC":
		p = synth.OC()
	case "PC":
		p = synth.PC()
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown profile %q\n", *name)
		os.Exit(2)
	}
	if *scale > 1 {
		p = synth.Scaled(p, *scale)
	}
	train, test, err := synth.Generate(p)
	if err != nil {
		fail(err)
	}
	base := strings.ToLower(strings.ReplaceAll(p.Name, "/", "x"))
	if err := write(filepath.Join(*out, base+"_train.txt"), train); err != nil {
		fail(err)
	}
	if err := write(filepath.Join(*out, base+"_test.txt"), test); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %s_train.txt (%d rows) and %s_test.txt (%d rows), %d genes\n",
		base, train.NumRows(), base, test.NumRows(), train.NumGenes())
}

func write(path string, m *dataset.Matrix) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		// Close errors on a written file are real data loss (ENOSPC).
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	return dataset.WriteMatrix(f, m)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
