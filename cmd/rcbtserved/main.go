// Command rcbtserved serves trained RCBT classifiers over HTTP and,
// when given a data directory, runs mining/training jobs
// asynchronously.
//
// Usage:
//
//	rcbtserved [-model name=model.json ...] [-data-dir dir] \
//	    [-dataset name=matrix.txt ...] [-peers url,url,...] \
//	    [-job-workers 2] [-job-queue 64] [-job-timeout 0] \
//	    [-refresh-after 150ms] [-keep-versions 0] \
//	    [-addr :8344] [-timeout 5s] [-max-batch 1024] [-batch-workers 4]
//
// Each -model flag loads one JSON model envelope (written by
// cmd/rcbt -save) under a serving name. At least one of -model or
// -data-dir is required. The server exposes:
//
//	POST /v1/models/{name}/classify        {"values": [...]} or {"items": [...]}
//	POST /v1/models/{name}/classify/batch  {"rows": [{"values": [...]}, ...]}
//	GET  /v1/models                        loaded models and their metadata
//	GET  /v1/models/{name}                 a model's envelope (replication)
//	POST   /v1/jobs                        submit a mine/train job (needs -data-dir)
//	GET    /v1/jobs[/{id}]                 list jobs / fetch one
//	DELETE /v1/jobs/{id}                   cancel a job
//	POST /v1/datasets                      create a streaming dataset (needs -data-dir)
//	POST /v1/datasets/{name}/rows          append rows; triggers a debounced re-train
//	GET  /v1/datasets[/{name}]             list datasets / inspect the latest version
//	GET  /v1/datasets/{name}/versions/{v}  inspect a pinned snapshot version
//	GET  /healthz                          liveness probe
//	GET  /metrics                          Prometheus text exposition
//
// (POST /v1/classify and /v1/classify/batch answer 308 redirects onto
// the model-scoped routes for one release.)
//
// With -data-dir, job records are journaled under <dir>/jobs and
// trained models under <dir>/models; a restarted server lists prior
// jobs and serves their models. Each -dataset flag registers a raw
// expression matrix for job submissions to reference by name: it is
// discretized at startup (entropy-MDL) and models trained on it bundle
// the cuts, so they classify raw expression rows.
//
// -data-dir also enables streaming ingestion: datasets created over
// POST /v1/datasets persist as immutable versioned snapshots under
// <dir>/datasets and survive restarts. Appending rows mints a new
// version via an incremental refresh (only genes whose entropy-MDL
// cuts changed are re-discretized) and, after -refresh-after of
// quiet, re-trains and hot-swaps the dataset's model with zero
// downtime. Job submissions reference "{name}" for the latest version
// or "{name}@{v}" to pin one; -keep-versions bounds how many snapshot
// versions are retained per dataset (0 = all; a pinned reference to a
// pruned version answers 409).
//
// -peers turns the process into a cluster node. It names the other
// replicas' base URLs and enables two things: mine jobs submitted with
// {"miner": "cluster"} are coordinated across the peers — each peer
// mines column partitions through its own /v1/jobs surface, and the
// merged result is identical to single-node mining — and a model
// lookup that misses locally is pulled from the first peer that has
// it, so any replica serves any model wherever its train job ran.
//
// The bound address is printed on startup (useful with -addr :0).
// SIGINT/SIGTERM shut down in order: stop accepting job submissions
// (503), drain in-flight HTTP requests, then cancel running jobs and
// wait for their final journal writes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/datastore"
	"repro/internal/discretize"
	"repro/internal/engine"
	"repro/internal/jobs"
	"repro/internal/rcbt"
	"repro/internal/serve"

	// Register every miner so mine jobs can dispatch by name.
	_ "repro/internal/carpenter"
	_ "repro/internal/charm"
	_ "repro/internal/closet"
	_ "repro/internal/core"
	_ "repro/internal/farmer"
	_ "repro/internal/hybrid"
)

// kvFlags collects repeated -model / -dataset name=path pairs.
type kvFlags map[string]string

func (m kvFlags) String() string { return fmt.Sprintf("%v", map[string]string(m)) }

func (m kvFlags) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok || name == "" || path == "" {
		return fmt.Errorf("want name=path, got %q", v)
	}
	if _, dup := m[name]; dup {
		return fmt.Errorf("duplicate name %q", name)
	}
	m[name] = path
	return nil
}

func main() {
	models := kvFlags{}
	datasets := kvFlags{}
	flag.Var(models, "model", "model to serve as name=path (repeatable)")
	flag.Var(datasets, "dataset", "raw expression matrix jobs may reference as name=path (repeatable, needs -data-dir)")
	addr := flag.String("addr", ":8344", "listen address (use :0 for an ephemeral port)")
	timeout := flag.Duration("timeout", serve.DefaultRequestTimeout, "per-request deadline")
	maxBatch := flag.Int("max-batch", serve.DefaultMaxBatch, "max rows per batch request")
	batchWorkers := flag.Int("batch-workers", serve.DefaultBatchWorkers, "concurrent rows per batch request")
	dataDir := flag.String("data-dir", "", "directory for job journals and trained models (enables /v1/jobs)")
	jobWorkers := flag.Int("job-workers", 2, "concurrent jobs")
	jobQueue := flag.Int("job-queue", 64, "max queued jobs")
	jobTimeout := flag.Duration("job-timeout", 0, "default per-job deadline (0 = unbounded)")
	refreshAfter := flag.Duration("refresh-after", serve.DefaultRefreshAfter, "quiet period after an append before auto re-train (negative disables)")
	keepVersions := flag.Int("keep-versions", 0, "snapshot versions retained per streaming dataset (0 = all)")
	peersFlag := flag.String("peers", "", "comma-separated replica base URLs; enables cluster mining and model replication")
	flag.Parse()

	if len(models) == 0 && *dataDir == "" {
		fmt.Fprintln(os.Stderr, "rcbtserved: need at least one -model or a -data-dir")
		flag.Usage()
		os.Exit(2)
	}
	if len(datasets) > 0 && *dataDir == "" {
		fail(errors.New("-dataset requires -data-dir (datasets exist for job submissions)"))
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))

	var peers []string
	for _, p := range strings.Split(*peersFlag, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peers = append(peers, strings.TrimRight(p, "/"))
		}
	}
	if len(peers) > 0 {
		// A coordinator is just a node with a cluster miner registered:
		// mine jobs submitted here with {"miner": "cluster"} fan out to
		// the peers' own /v1/jobs surfaces.
		engine.Register(cluster.New(cluster.Config{Peers: peers, Logger: logger}))
		logger.Info("cluster mode", "peers", peers)
	}

	loaded := make(map[string]*rcbt.Model, len(models))
	for name, path := range models {
		m, err := loadModel(path)
		if err != nil {
			fail(fmt.Errorf("model %s: %w", name, err))
		}
		loaded[name] = m
		logger.Info("model loaded", "name", name, "path", path,
			"classes", len(m.ClassNames), "items", m.NumItems,
			"discretizer", m.Discretizer != nil)
	}

	named := make(map[string]serve.NamedDataset, len(datasets))
	for name, path := range datasets {
		nd, err := loadDataset(path)
		if err != nil {
			fail(fmt.Errorf("dataset %s: %w", name, err))
		}
		named[name] = nd
		logger.Info("dataset loaded", "name", name, "path", path,
			"rows", nd.Dataset.NumRows(), "items", nd.Dataset.NumItems())
	}

	var mgr *jobs.Manager
	var store *datastore.Store
	if *dataDir != "" {
		var err error
		mgr, err = jobs.Open(context.Background(), jobs.Config{
			DataDir:        *dataDir,
			Workers:        *jobWorkers,
			QueueDepth:     *jobQueue,
			DefaultTimeout: *jobTimeout,
			Logger:         log.New(os.Stderr, "jobs: ", log.LstdFlags),
		})
		if err != nil {
			fail(err)
		}
		store, err = datastore.Open(datastore.Config{
			Dir:          filepath.Join(*dataDir, "datasets"),
			KeepVersions: *keepVersions,
		})
		if err != nil {
			fail(err)
		}
		for _, name := range store.Names() {
			snap, err := store.Get(name)
			if err != nil {
				continue
			}
			logger.Info("streaming dataset recovered", "name", name,
				"version", snap.Version, "rows", len(snap.Dataset.Rows))
		}
	}

	s, err := serve.New(serve.Config{
		Models:         loaded,
		Jobs:           mgr,
		Datasets:       named,
		Store:          store,
		RefreshAfter:   *refreshAfter,
		RequestTimeout: *timeout,
		MaxBatch:       *maxBatch,
		BatchWorkers:   *batchWorkers,
		Logger:         logger,
		Peers:          peers,
	})
	if err != nil {
		fail(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	// Printed to stdout so scripts (and the CI smoke test) can scrape
	// the bound address when -addr :0 picked an ephemeral port.
	fmt.Printf("rcbtserved listening on %s\n", ln.Addr())
	logger.Info("serving", "addr", ln.Addr().String(), "models", s.ModelNames(), "jobs", mgr != nil)

	srv := &http.Server{
		Handler:           s,
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fail(err)
		}
	case <-ctx.Done():
		logger.Info("shutting down")
		// Shutdown order matters: stop the refresh debouncer (no new
		// auto-train submissions), refuse new job submissions (503 while
		// draining), then cancel running jobs and wait for their final
		// journal writes, then drain in-flight HTTP requests — so a
		// client polling a canceled job can still read its terminal state.
		s.Close()
		if mgr != nil {
			mgr.Drain()
			if err := mgr.Close(); err != nil {
				logger.Error("jobs close", "err", err)
			}
		}
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			fail(err)
		}
	}
}

func loadModel(path string) (*rcbt.Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close() // vetsuite:allow uncheckederr -- read-only file, nothing buffered to lose
	return rcbt.LoadModel(f)
}

// loadDataset reads a raw expression matrix, fits the entropy-MDL
// discretizer and transforms the matrix into the item dataset jobs
// mine and train on.
func loadDataset(path string) (serve.NamedDataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return serve.NamedDataset{}, err
	}
	defer f.Close() // vetsuite:allow uncheckederr -- read-only file, nothing buffered to lose
	m, err := dataset.ReadMatrix(f)
	if err != nil {
		return serve.NamedDataset{}, err
	}
	dz, err := discretize.FitMatrix(m)
	if err != nil {
		return serve.NamedDataset{}, err
	}
	d, err := dz.Transform(m)
	if err != nil {
		return serve.NamedDataset{}, err
	}
	return serve.NamedDataset{Dataset: d, Discretizer: dz}, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "rcbtserved:", err)
	os.Exit(1)
}
