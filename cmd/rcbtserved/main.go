// Command rcbtserved serves trained RCBT classifiers over HTTP.
//
// Usage:
//
//	rcbtserved -model name=model.json [-model other=other.json] \
//	    [-addr :8344] [-timeout 5s] [-max-batch 1024] [-batch-workers 4]
//
// Each -model flag loads one JSON model envelope (written by
// cmd/rcbt -save) under a serving name. The server exposes:
//
//	POST /v1/classify        {"model": "name", "values": [...]} or {"items": [...]}
//	POST /v1/classify/batch  {"model": "name", "rows": [{"values": [...]}, ...]}
//	GET  /v1/models          loaded models and their metadata
//	GET  /healthz            liveness probe
//	GET  /metrics            Prometheus text exposition
//
// The bound address is printed on startup (useful with -addr :0), and
// SIGINT/SIGTERM trigger a graceful drain before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/rcbt"
	"repro/internal/serve"
)

// modelFlags collects repeated -model name=path pairs.
type modelFlags map[string]string

func (m modelFlags) String() string { return fmt.Sprintf("%v", map[string]string(m)) }

func (m modelFlags) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok || name == "" || path == "" {
		return fmt.Errorf("want name=path, got %q", v)
	}
	if _, dup := m[name]; dup {
		return fmt.Errorf("duplicate model name %q", name)
	}
	m[name] = path
	return nil
}

func main() {
	models := modelFlags{}
	flag.Var(models, "model", "model to serve as name=path (repeatable, required)")
	addr := flag.String("addr", ":8344", "listen address (use :0 for an ephemeral port)")
	timeout := flag.Duration("timeout", serve.DefaultRequestTimeout, "per-request deadline")
	maxBatch := flag.Int("max-batch", serve.DefaultMaxBatch, "max rows per batch request")
	batchWorkers := flag.Int("batch-workers", serve.DefaultBatchWorkers, "concurrent rows per batch request")
	flag.Parse()

	if len(models) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))

	loaded := make(map[string]*rcbt.Model, len(models))
	for name, path := range models {
		m, err := loadModel(path)
		if err != nil {
			fail(fmt.Errorf("model %s: %w", name, err))
		}
		loaded[name] = m
		logger.Info("model loaded", "name", name, "path", path,
			"classes", len(m.ClassNames), "items", m.NumItems,
			"discretizer", m.Discretizer != nil)
	}

	s, err := serve.New(serve.Config{
		Models:         loaded,
		RequestTimeout: *timeout,
		MaxBatch:       *maxBatch,
		BatchWorkers:   *batchWorkers,
		Logger:         logger,
	})
	if err != nil {
		fail(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	// Printed to stdout so scripts (and the CI smoke test) can scrape
	// the bound address when -addr :0 picked an ephemeral port.
	fmt.Printf("rcbtserved listening on %s\n", ln.Addr())
	logger.Info("serving", "addr", ln.Addr().String(), "models", s.ModelNames())

	srv := &http.Server{
		Handler:           s,
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fail(err)
		}
	case <-ctx.Done():
		logger.Info("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			fail(err)
		}
	}
}

func loadModel(path string) (*rcbt.Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close() // vetsuite:allow uncheckederr -- read-only file, nothing buffered to lose
	return rcbt.LoadModel(f)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "rcbtserved:", err)
	os.Exit(1)
}
