// Command rcbt trains an RCBT classifier on a training expression
// matrix and evaluates it on a test matrix (both in the matrix text
// format of internal/dataset).
//
// Usage:
//
//	rcbt -train train.txt -test test.txt [-k 10] [-nl 20] [-minsup 0.7]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dataset"
	"repro/internal/discretize"
	"repro/internal/rcbt"
)

func main() {
	trainPath := flag.String("train", "", "training matrix file (required)")
	testPath := flag.String("test", "", "test matrix file (required)")
	k := flag.Int("k", 10, "covering rule groups per row (main + k-1 standby classifiers)")
	nl := flag.Int("nl", 20, "lower-bound rules per rule group")
	minsup := flag.Float64("minsup", 0.7, "relative minimum support")
	saveModel := flag.String("save", "", "write the trained model (gob) to this path")
	loadModel := flag.String("load", "", "load a model instead of training (train matrix still needed for discretization)")
	flag.Parse()

	if *trainPath == "" || *testPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	train, err := loadMatrix(*trainPath)
	if err != nil {
		fail(err)
	}
	test, err := loadMatrix(*testPath)
	if err != nil {
		fail(err)
	}
	dz, err := discretize.FitMatrix(train)
	if err != nil {
		fail(err)
	}
	dTrain, err := dz.Transform(train)
	if err != nil {
		fail(err)
	}
	dTest, err := dz.Transform(test)
	if err != nil {
		fail(err)
	}
	fmt.Printf("genes: %d raw, %d after entropy discretization; %d items\n",
		train.NumGenes(), dz.NumSelectedGenes(), dTrain.NumItems())

	var c *rcbt.Classifier
	if *loadModel != "" {
		f, err := os.Open(*loadModel)
		if err != nil {
			fail(err)
		}
		c, err = rcbt.Load(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fail(err)
		}
		fmt.Printf("loaded model from %s\n", *loadModel)
	} else {
		c, err = rcbt.Train(dTrain, rcbt.Config{K: *k, NL: *nl, MinsupFrac: *minsup, LBMaxLen: 5, LBMaxCandidates: 1 << 18})
		if err != nil {
			fail(err)
		}
	}
	if *saveModel != "" {
		f, err := os.Create(*saveModel)
		if err != nil {
			fail(err)
		}
		if err := c.Save(f); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("saved model to %s\n", *saveModel)
	}
	fmt.Printf("classifiers built: %d (1 main + %d standby), default class %s\n",
		c.NumClassifiers(), c.NumClassifiers()-1, dTrain.ClassNames[c.Default()])

	preds, stats := c.PredictDataset(dTest)
	correct := 0
	for r, p := range preds {
		marker := " "
		if p == dTest.Labels[r] {
			correct++
			marker = "+"
		}
		_ = marker
	}
	fmt.Printf("test accuracy: %d/%d = %.2f%%\n", correct, dTest.NumRows(),
		100*float64(correct)/float64(dTest.NumRows()))
	fmt.Printf("decided by main classifier: %d, standby: %v, default class: %d\n",
		first(stats.ByClassifier), rest(stats.ByClassifier), stats.Defaults)
}

func first(xs []int) int {
	if len(xs) == 0 {
		return 0
	}
	return xs[0]
}

func rest(xs []int) []int {
	if len(xs) <= 1 {
		return nil
	}
	return xs[1:]
}

func loadMatrix(path string) (*dataset.Matrix, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close() // vetsuite:allow uncheckederr -- read-only file, nothing buffered to lose
	return dataset.ReadMatrix(f)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "rcbt:", err)
	os.Exit(1)
}
