// Command rcbt trains an RCBT classifier on a training expression
// matrix, optionally evaluates it on a test matrix, and saves/loads
// the versioned JSON model envelope served by rcbtserved.
//
// Usage:
//
//	rcbt -train train.txt [-test test.txt] [-k 10] [-nl 20] [-minsup 0.7] [-save model.json]
//	rcbt -load model.json -test test.txt
//
// A saved model bundles the discretization cut points, so -load does
// not need the training matrix.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/dataset"
	"repro/internal/discretize"
	"repro/internal/rcbt"
)

func main() {
	trainPath := flag.String("train", "", "training matrix file (required unless -load)")
	testPath := flag.String("test", "", "test matrix file")
	k := flag.Int("k", 10, "covering rule groups per row (main + k-1 standby classifiers)")
	nl := flag.Int("nl", 20, "lower-bound rules per rule group")
	minsup := flag.Float64("minsup", 0.7, "relative minimum support")
	saveModel := flag.String("save", "", "write the trained model (JSON envelope) to this path")
	loadModel := flag.String("load", "", "load a model envelope instead of training")
	flag.Parse()

	if *trainPath == "" && *loadModel == "" {
		flag.Usage()
		os.Exit(2)
	}

	var model *rcbt.Model
	if *loadModel != "" {
		m, err := loadModelFile(*loadModel)
		if err != nil {
			fail(err)
		}
		model = m
		fmt.Printf("loaded model from %s (schema v%d, %d classes, %d items)\n",
			*loadModel, rcbt.ModelSchemaVersion, len(model.ClassNames), model.NumItems)
	} else {
		m, err := trainModel(*trainPath, *k, *nl, *minsup)
		if err != nil {
			fail(err)
		}
		model = m
	}
	c := model.Classifier
	fmt.Printf("classifiers built: %d (1 main + %d standby), default class %s\n",
		c.NumClassifiers(), c.NumClassifiers()-1, model.ClassName(c.Default()))

	if *saveModel != "" {
		if err := saveModelFile(*saveModel, model); err != nil {
			fail(err)
		}
		fmt.Printf("saved model to %s\n", *saveModel)
	}

	if *testPath != "" {
		if err := evaluate(model, *testPath); err != nil {
			fail(err)
		}
	}
}

func trainModel(trainPath string, k, nl int, minsup float64) (*rcbt.Model, error) {
	train, err := loadMatrix(trainPath)
	if err != nil {
		return nil, err
	}
	dz, err := discretize.FitMatrix(train)
	if err != nil {
		return nil, err
	}
	dTrain, err := dz.Transform(train)
	if err != nil {
		return nil, err
	}
	fmt.Printf("genes: %d raw, %d after entropy discretization; %d items\n",
		train.NumGenes(), dz.NumSelectedGenes(), dTrain.NumItems())
	c, err := rcbt.Train(dTrain, rcbt.Config{K: k, NL: nl, MinsupFrac: minsup, LBMaxLen: 5, LBMaxCandidates: 1 << 18})
	if err != nil {
		return nil, err
	}
	return &rcbt.Model{
		Classifier:  c,
		Discretizer: dz,
		ClassNames:  dTrain.ClassNames,
		NumItems:    dTrain.NumItems(),
		Meta: rcbt.Meta{
			Dataset:   filepath.Base(trainPath),
			TrainRows: dTrain.NumRows(),
			Genes:     train.NumGenes(),
			CreatedAt: time.Now().UTC().Format(time.RFC3339),
		},
	}, nil
}

func evaluate(model *rcbt.Model, testPath string) error {
	if model.Discretizer == nil {
		return fmt.Errorf("model has no discretizer; cannot evaluate a raw matrix")
	}
	test, err := loadMatrix(testPath)
	if err != nil {
		return err
	}
	dTest, err := model.Discretizer.Transform(test)
	if err != nil {
		return err
	}
	preds, stats := model.Classifier.PredictDataset(dTest)
	correct := 0
	for r, p := range preds {
		if p == dTest.Labels[r] {
			correct++
		}
	}
	fmt.Printf("test accuracy: %d/%d = %.2f%%\n", correct, dTest.NumRows(),
		100*float64(correct)/float64(dTest.NumRows()))
	fmt.Printf("decided by main classifier: %d, standby: %v, default class: %d\n",
		first(stats.ByClassifier), rest(stats.ByClassifier), stats.Defaults)
	return nil
}

func loadModelFile(path string) (*rcbt.Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close() // vetsuite:allow uncheckederr -- read-only file, nothing buffered to lose
	return rcbt.LoadModel(f)
}

func saveModelFile(path string, m *rcbt.Model) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.Save(f); err != nil {
		f.Close() // vetsuite:allow uncheckederr -- save already failed
		return err
	}
	return f.Close()
}

func first(xs []int) int {
	if len(xs) == 0 {
		return 0
	}
	return xs[0]
}

func rest(xs []int) []int {
	if len(xs) <= 1 {
		return nil
	}
	return xs[1:]
}

func loadMatrix(path string) (*dataset.Matrix, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close() // vetsuite:allow uncheckederr -- read-only file, nothing buffered to lose
	return dataset.ReadMatrix(f)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "rcbt:", err)
	os.Exit(1)
}
