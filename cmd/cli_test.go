// Package cmd_test builds each CLI binary once and exercises it end to
// end on temporary files — the executables' integration tests.
package cmd_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/dataset"
)

var (
	buildOnce sync.Once
	binDir    string
	buildErr  error
)

// binaries builds all commands into a shared temp dir.
func binaries(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		binDir, buildErr = os.MkdirTemp("", "repro-bin")
		if buildErr != nil {
			return
		}
		for _, cmd := range []string{"topkrgs", "rcbt", "rcbtserved", "datagen", "benchrunner"} {
			out, err := exec.Command("go", "build", "-o", filepath.Join(binDir, cmd), "./"+cmd).CombinedOutput()
			if err != nil {
				buildErr = err
				t.Logf("build %s: %s", cmd, out)
				return
			}
		}
	})
	if buildErr != nil {
		t.Fatalf("building binaries: %v", buildErr)
	}
	return binDir
}

func run(t *testing.T, name string, args ...string) string {
	t.Helper()
	cmd := exec.Command(filepath.Join(binaries(t), name), args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", name, args, err, out)
	}
	return string(out)
}

func TestDatagenAndTopkrgs(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration in -short mode")
	}
	dir := t.TempDir()
	out := run(t, "datagen", "-profile", "ALL", "-scale", "60", "-out", dir)
	if !strings.Contains(out, "wrote") {
		t.Fatalf("datagen output: %s", out)
	}
	trainPath := filepath.Join(dir, "allx60_train.txt")
	if _, err := os.Stat(trainPath); err != nil {
		t.Fatalf("train file missing: %v", err)
	}

	out = run(t, "topkrgs", "-in", trainPath, "-matrix", "-class", "0", "-minsup", "0.8", "-k", "3")
	if !strings.Contains(out, "distinct top-3 covering rule groups") {
		t.Fatalf("topkrgs output: %s", out)
	}
	if !strings.Contains(out, "enumeration: nodes=") {
		t.Fatalf("missing stats: %s", out)
	}
}

func TestTopkrgsVerbose(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration in -short mode")
	}
	dir := t.TempDir()
	run(t, "datagen", "-profile", "LC", "-scale", "100", "-out", dir)
	out := run(t, "topkrgs", "-in", filepath.Join(dir, "lcx100_train.txt"),
		"-matrix", "-class", "1", "-minsup", "0.9", "-k", "2", "-v")
	if !strings.Contains(out, "row ") {
		t.Fatalf("verbose output missing per-row lists: %s", out)
	}
}

func TestRcbtCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration in -short mode")
	}
	dir := t.TempDir()
	run(t, "datagen", "-profile", "ALL", "-scale", "40", "-out", dir)
	out := run(t, "rcbt",
		"-train", filepath.Join(dir, "allx40_train.txt"),
		"-test", filepath.Join(dir, "allx40_test.txt"),
		"-k", "3", "-nl", "5")
	if !strings.Contains(out, "test accuracy:") {
		t.Fatalf("rcbt output: %s", out)
	}
	if !strings.Contains(out, "classifiers built:") {
		t.Fatalf("rcbt output missing classifier summary: %s", out)
	}
}

func TestBenchrunnerTable1(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration in -short mode")
	}
	out := run(t, "benchrunner", "-exp", "table1", "-scale", "60")
	if !strings.Contains(out, "Table 1") || !strings.Contains(out, "ALL/60") {
		t.Fatalf("benchrunner output: %s", out)
	}
}

func TestBenchrunnerFig6Filtered(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration in -short mode")
	}
	out := run(t, "benchrunner", "-exp", "fig6", "-scale", "60",
		"-datasets", "ALL", "-minsups", "0.9", "-budget", "100000")
	if !strings.Contains(out, "TopkRGS(k=1)") {
		t.Fatalf("fig6 output: %s", out)
	}
	if strings.Contains(out, "LC/60") {
		t.Fatalf("dataset filter ignored: %s", out)
	}
}

func TestTopkrgsLowerBounds(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration in -short mode")
	}
	dir := t.TempDir()
	run(t, "datagen", "-profile", "ALL", "-scale", "80", "-out", dir)
	out := run(t, "topkrgs", "-in", filepath.Join(dir, "allx80_train.txt"),
		"-matrix", "-minsup", "0.8", "-k", "2", "-lb", "3")
	if !strings.Contains(out, "lb: ") {
		t.Fatalf("expected lower bound lines: %s", out)
	}
}

func TestRcbtSaveLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration in -short mode")
	}
	dir := t.TempDir()
	run(t, "datagen", "-profile", "ALL", "-scale", "60", "-out", dir)
	trainF := filepath.Join(dir, "allx60_train.txt")
	testF := filepath.Join(dir, "allx60_test.txt")
	model := filepath.Join(dir, "model.json")
	out1 := run(t, "rcbt", "-train", trainF, "-test", testF, "-k", "2", "-nl", "3", "-save", model)
	if !strings.Contains(out1, "saved model to") {
		t.Fatalf("save missing: %s", out1)
	}
	// The envelope bundles the discretizer, so -load needs no -train.
	out2 := run(t, "rcbt", "-load", model, "-test", testF)
	if !strings.Contains(out2, "loaded model from") {
		t.Fatalf("load missing: %s", out2)
	}
	// Accuracy lines must agree between the trained and reloaded model.
	accOf := func(out string) string {
		for _, l := range strings.Split(out, "\n") {
			if strings.HasPrefix(l, "test accuracy:") {
				return l
			}
		}
		return ""
	}
	if a, b := accOf(out1), accOf(out2); a == "" || a != b {
		t.Fatalf("accuracy mismatch: %q vs %q", a, b)
	}
}

// TestRcbtservedSmoke trains a model via the CLI, serves it with
// rcbtserved on an ephemeral port, and walks the HTTP API end to end:
// health, model listing, classification of a real test row, metrics.
func TestRcbtservedSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration in -short mode")
	}
	dir := t.TempDir()
	run(t, "datagen", "-profile", "ALL", "-scale", "60", "-out", dir)
	trainF := filepath.Join(dir, "allx60_train.txt")
	testF := filepath.Join(dir, "allx60_test.txt")
	model := filepath.Join(dir, "model.json")
	run(t, "rcbt", "-train", trainF, "-k", "2", "-nl", "3", "-save", model)

	cmd := exec.Command(filepath.Join(binaries(t), "rcbtserved"),
		"-model", "synth="+model, "-addr", "127.0.0.1:0")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill() // vetsuite:allow uncheckederr -- best-effort cleanup

	// The server prints its bound address as the first stdout line.
	var base string
	sc := bufio.NewScanner(stdout)
	if sc.Scan() {
		line := sc.Text()
		const marker = "listening on "
		i := strings.Index(line, marker)
		if i < 0 {
			t.Fatalf("unexpected startup line: %q", line)
		}
		base = "http://" + line[i+len(marker):]
	} else {
		t.Fatalf("no startup line: %v", sc.Err())
	}

	get := func(path string) (int, string) {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body) // vetsuite:allow uncheckederr -- test helper
		resp.Body.Close()       // vetsuite:allow uncheckederr -- test helper
		return resp.StatusCode, buf.String()
	}

	if code, body := get("/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("healthz: %d %s", code, body)
	}
	if code, body := get("/v1/models"); code != http.StatusOK || !strings.Contains(body, `"synth"`) {
		t.Fatalf("models: %d %s", code, body)
	}

	// Classify a genuine row of the held-out test matrix.
	f, err := os.Open(testF)
	if err != nil {
		t.Fatal(err)
	}
	m, err := dataset.ReadMatrix(f)
	f.Close() // vetsuite:allow uncheckederr -- test helper
	if err != nil {
		t.Fatal(err)
	}
	reqBody, _ := json.Marshal(map[string]any{"model": "synth", "values": m.Values[0]})
	resp, err := http.Post(base+"/v1/classify", "application/json", bytes.NewReader(reqBody))
	if err != nil {
		t.Fatal(err)
	}
	var classifyResp struct {
		Class string `json:"class"`
		Label int    `json:"label"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&classifyResp); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close() // vetsuite:allow uncheckederr -- test helper
	if resp.StatusCode != http.StatusOK || classifyResp.Class == "" {
		t.Fatalf("classify: %d %+v", resp.StatusCode, classifyResp)
	}

	// http.Post followed the 308 onto the model-scoped route, so the
	// metrics carry both hops of the legacy path.
	if code, body := get("/metrics"); code != http.StatusOK ||
		!strings.Contains(body, `rcbtserved_requests_total{path="/v1/classify",code="308"} 1`) ||
		!strings.Contains(body, `rcbtserved_requests_total{path="/v1/models/{name}/classify",code="200"} 1`) {
		t.Fatalf("metrics: %d\n%s", code, body)
	}

	// Graceful shutdown on SIGTERM.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("server exited with: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down within 10s")
	}
}

// TestRcbtservedJobsShutdown starts rcbtserved with only a data
// directory (no models), submits a deliberately slow mining job over
// HTTP, and SIGTERMs the process mid-run. The process must exit
// cleanly, and the job's journal in the data dir must record the
// cancellation — the on-disk proof that shutdown canceled running
// jobs and waited for their final writes.
func TestRcbtservedJobsShutdown(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration in -short mode")
	}
	dataDir := filepath.Join(t.TempDir(), "data")

	cmd := exec.Command(filepath.Join(binaries(t), "rcbtserved"),
		"-data-dir", dataDir, "-addr", "127.0.0.1:0", "-job-workers", "1")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill() // vetsuite:allow uncheckederr -- best-effort cleanup

	var base string
	sc := bufio.NewScanner(stdout)
	if sc.Scan() {
		line := sc.Text()
		const marker = "listening on "
		i := strings.Index(line, marker)
		if i < 0 {
			t.Fatalf("unexpected startup line: %q", line)
		}
		base = "http://" + line[i+len(marker):]
	} else {
		t.Fatalf("no startup line: %v", sc.Err())
	}

	// Dense random rows make carpenter's minsup=1 closed-set tree far
	// too large to finish within this test — the job is still running
	// whenever we decide to pull the plug.
	rng := rand.New(rand.NewSource(7))
	rows := make([]map[string]any, 52)
	for r := range rows {
		items := []int{}
		for it := 0; it < 72; it++ {
			if rng.Float64() < 0.6 {
				items = append(items, it)
			}
		}
		rows[r] = map[string]any{"items": items, "label": r % 2}
	}
	payload, _ := json.Marshal(map[string]any{
		"kind": "mine", "miner": "carpenter", "minsup": 1,
		"data": map[string]any{
			"classes":  []string{"a", "b"},
			"numItems": 72,
			"rows":     rows,
		},
	})
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	var rec struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close() // vetsuite:allow uncheckederr -- test helper
	if resp.StatusCode != http.StatusAccepted || rec.ID == "" {
		t.Fatalf("submit: %d %+v", resp.StatusCode, rec)
	}

	// Wait until the single worker has actually picked the job up.
	for deadline := time.Now().Add(10 * time.Second); ; {
		resp, err := http.Get(base + "/v1/jobs/" + rec.ID)
		if err != nil {
			t.Fatal(err)
		}
		var cur struct {
			State string `json:"state"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&cur); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close() // vetsuite:allow uncheckederr -- test helper
		if cur.State == "running" {
			break
		}
		if cur.State != "queued" {
			t.Fatalf("job state = %q before shutdown", cur.State)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started running")
		}
		time.Sleep(10 * time.Millisecond)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("server exited with: %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("server did not shut down within 20s")
	}

	data, err := os.ReadFile(filepath.Join(dataDir, "jobs", rec.ID+".json"))
	if err != nil {
		t.Fatalf("journal not written: %v", err)
	}
	var final struct {
		State    string `json:"state"`
		ErrCause string `json:"errCause"`
	}
	if err := json.Unmarshal(data, &final); err != nil {
		t.Fatalf("journal unreadable: %v\n%s", err, data)
	}
	if final.State != "canceled" || final.ErrCause != "canceled" {
		t.Fatalf("journal after shutdown: state=%q cause=%q, want canceled/canceled",
			final.State, final.ErrCause)
	}
}

func TestBenchrunnerJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration in -short mode")
	}
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "table1.json")
	run(t, "benchrunner", "-exp", "table1", "-scale", "60", "-json", jsonPath)
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rows []map[string]any
	if err := json.Unmarshal(data, &rows); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(rows) != 4 {
		t.Fatalf("JSON rows = %d, want 4", len(rows))
	}
}
